"""Scenario-vs-baseline comparison of aggregated campaign metrics.

A sweep is usually a *question*: does doubling the testbed change the bug
count?  Does disabling the framework tank reliability?  This module turns
two aggregated scenarios into per-metric deltas, flagging which differences
are resolvable at 95 % confidence (the intervals do not overlap) and which
drown in seed noise.

Overlapping-CI is a conservative screen, not a t-test: non-overlap at 95 %
implies a significant difference, while overlap merely means "not resolved
at this seed count" — the honest phrasing for small sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # real imports are deferred: analysis loads during the
    # repro.core package's own import (builder pulls in BuildHistory), so a
    # module-level import of core.batch here would be a circular import.
    from ..core.batch import CampaignRun, MetricSummary

__all__ = ["MetricDelta", "compare_aggregates", "compare_runs",
           "format_comparison"]


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one scenario measured against the baseline."""

    metric: str
    baseline: "MetricSummary"
    other: "MetricSummary"
    #: ``other.mean - baseline.mean`` (NaN when either side has no sample).
    delta: float
    #: Relative change vs the baseline mean (NaN when undefined).
    pct: float
    #: True when the two 95 % intervals overlap (difference not resolved).
    ci_overlap: bool

    @property
    def significant(self) -> bool:
        """Resolved at 95 %: intervals disjoint, with real intervals on
        both sides.  A single-seed side has ci95 = 0 — a point, not an
        interval — so nothing can be resolved from it, only suggested."""
        return (not self.ci_overlap
                and not math.isnan(self.delta)
                and (self.baseline.n > 1 and self.other.n > 1))


def _delta(metric: str, base: "MetricSummary", other: "MetricSummary") -> MetricDelta:
    if base.n == 0 or other.n == 0:
        return MetricDelta(metric, base, other, float("nan"), float("nan"),
                           ci_overlap=True)
    delta = other.mean - base.mean
    pct = delta / abs(base.mean) if base.mean != 0 else float("nan")
    overlap = (base.mean - base.ci95 <= other.mean + other.ci95
               and other.mean - other.ci95 <= base.mean + base.ci95)
    return MetricDelta(metric, base, other, delta, pct, ci_overlap=overlap)


def compare_aggregates(
    aggregated: dict[str, dict[str, "MetricSummary"]],
    baseline: str,
    metrics: Optional[Sequence[str]] = None,
) -> dict[str, list[MetricDelta]]:
    """Delta of every non-baseline scenario against ``baseline``.

    ``aggregated`` is :func:`~repro.core.batch.aggregate_runs` output;
    ``metrics`` defaults to every scalar metric.  Returns
    ``{scenario: [MetricDelta, ...]}`` for every other scenario.
    """
    if metrics is None:
        from ..core.batch import SCALAR_METRICS
        metrics = SCALAR_METRICS
    if baseline not in aggregated:
        raise KeyError(
            f"baseline scenario {baseline!r} not in results "
            f"(have: {', '.join(sorted(aggregated)) or 'none'})")
    base = aggregated[baseline]
    out: dict[str, list[MetricDelta]] = {}
    for scenario, summaries in aggregated.items():
        if scenario == baseline:
            continue
        out[scenario] = [_delta(m, base[m], summaries[m]) for m in metrics]
    return out


def compare_runs(
    runs: Sequence["CampaignRun"],
    baseline: str,
    metrics: Optional[Sequence[str]] = None,
) -> dict[str, list[MetricDelta]]:
    """:func:`compare_aggregates` straight from raw campaign runs."""
    from ..core.batch import aggregate_runs
    return compare_aggregates(aggregate_runs(runs), baseline, metrics)


def format_comparison(deltas: dict[str, list[MetricDelta]],
                      baseline: str,
                      only_significant: bool = False) -> str:
    """Render comparison blocks, one per scenario.

    Lines are marked ``*`` when the difference is resolved at 95 % and
    ``~`` when the intervals overlap.  ``only_significant`` drops the
    unresolved lines.
    """
    lines = [f"baseline: {baseline}"]
    for scenario in sorted(deltas):
        lines.append(f"{scenario}  (Δ vs {baseline})")
        shown = 0
        for d in deltas[scenario]:
            if only_significant and not d.significant:
                continue
            shown += 1
            if math.isnan(d.delta):
                lines.append(f"  ~ {d.metric:<32} no sample")
                continue
            mark = "*" if d.significant else "~"
            pct = f" ({d.pct:+.0%})" if not math.isnan(d.pct) else ""
            lines.append(
                f"  {mark} {d.metric:<32} {d.other.mean:.2f} ± "
                f"{d.other.ci95:.2f} vs {d.baseline.mean:.2f} ± "
                f"{d.baseline.ci95:.2f}  Δ={d.delta:+.2f}{pct}")
        if shown == 0:
            lines.append("  (no metric resolved at 95 %)")
    return "\n".join(lines)
