"""Shared fixtures: the full synthetic testbed is expensive enough to share."""

import pytest

from repro.testbed import ReferenceApi, build_grid5000, build_topology


@pytest.fixture(scope="session")
def testbed():
    """The paper-exact synthetic testbed (read-only across tests)."""
    return build_grid5000()


@pytest.fixture(scope="session")
def topology(testbed):
    return build_topology(testbed)


@pytest.fixture()
def fresh_testbed():
    """A private testbed instance for tests that mutate descriptions."""
    return build_grid5000()


@pytest.fixture()
def refapi(fresh_testbed):
    return ReferenceApi(fresh_testbed)
