"""The repro-campaign CLI: run/report/compare subcommands + legacy form."""

import json

import pytest

from repro import scenarios
from repro.cli import main
from repro.core.store import CampaignStore

SMOKE = ["--months", "0.1", "--seeds", "0"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


def test_list_presets(capsys):
    code, out, _ = run_cli(capsys, "--list")
    assert code == 0
    for spec in scenarios.all_presets():
        assert spec.name in out


def test_legacy_implicit_run(capsys):
    code, out, _ = run_cli(capsys, "tiny-smoke", *SMOKE, "--quiet")
    assert code == 0
    assert "campaign over 0.1 months" in out


def test_legacy_list_with_positional(capsys):
    # pre-subcommand CLI honoured --list regardless of other arguments
    code, out, _ = run_cli(capsys, "tiny-smoke", "--list")
    assert code == 0
    assert "tiny-smoke" in out and "paper-baseline" in out


def test_legacy_flags_only_invocation(capsys):
    # pre-subcommand CLI ran the default preset for flags-only argv too
    code, out, _ = run_cli(capsys, *SMOKE, "--json")
    assert code == 0
    docs = json.loads(out)
    assert docs[0]["scenario"] == "tiny-smoke"


def test_run_unknown_preset(capsys):
    code, _, err = run_cli(capsys, "run", "no-such-preset", "--quiet")
    assert code == 2
    assert "no-such-preset" in err


def test_run_json_output(capsys):
    code, out, _ = run_cli(capsys, "run", "tiny-smoke", *SMOKE, "--json")
    assert code == 0
    docs = json.loads(out)
    assert len(docs) == 1
    assert docs[0]["scenario"] == "tiny-smoke"
    assert docs[0]["error"] is None
    assert docs[0]["report"]["months"] == 0.1
    assert docs[0]["spec_hash"]


def test_run_with_store_then_resume(tmp_path, capsys):
    store = str(tmp_path / "s.jsonl")
    code, _, err = run_cli(capsys, "run", "tiny-smoke", *SMOKE,
                           "--store", store)
    assert code == 0
    assert "[1/1] tiny-smoke @ seed 0: ok" in err
    assert len(CampaignStore(store)) == 1

    code, _, err = run_cli(capsys, "run", "tiny-smoke", *SMOKE,
                           "--store", store, "--resume")
    assert code == 0
    assert "cached" in err


def test_resume_requires_store(capsys):
    code, _, err = run_cli(capsys, "run", "tiny-smoke", "--resume")
    assert code == 2
    assert "--store" in err


def test_report_subcommand(tmp_path, capsys):
    store = str(tmp_path / "s.jsonl")
    run_cli(capsys, "run", "tiny-smoke", "--months", "0.1",
            "--seeds", "0,1", "--store", store, "--quiet")
    code, out, _ = run_cli(capsys, "report", store)
    assert code == 0
    assert "2 cells (2 ok, 0 failed)" in out
    assert "tiny-smoke" in out and "n=2" in out


def test_report_empty_store(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    code, _, err = run_cli(capsys, "report", str(path))
    assert code == 1
    assert "empty" in err


def test_report_missing_store(tmp_path, capsys):
    code, _, err = run_cli(capsys, "report", str(tmp_path / "nope.jsonl"))
    assert code == 2
    assert "cannot load" in err


def test_run_with_incompatible_store_fails_cleanly(tmp_path, capsys):
    store = tmp_path / "future.jsonl"
    store.write_text(json.dumps({"v": 999, "key": "x"}) + "\n"
                     + json.dumps({"v": 999, "key": "y"}) + "\n")
    code, _, err = run_cli(capsys, "run", "tiny-smoke", *SMOKE,
                           "--store", str(store))
    assert code == 2
    assert "cannot load" in err


def test_report_mixed_horizons_disambiguates(tmp_path, capsys):
    # the same preset archived at two horizons is two different worlds;
    # report must summarize both (as distinct variants), not refuse or merge
    store = str(tmp_path / "s.jsonl")
    run_cli(capsys, "run", "tiny-smoke", "--months", "0.1", "--seeds", "0",
            "--store", store, "--quiet")
    run_cli(capsys, "run", "tiny-smoke", "--months", "0.12", "--seeds", "0",
            "--store", store, "--quiet")
    code, out, _ = run_cli(capsys, "report", store)
    assert code == 0
    assert "tiny-smoke@0.1mo" in out
    assert "tiny-smoke@0.12mo" in out
    # the machine-readable form keeps the stable archived names
    code, out, _ = run_cli(capsys, "report", store, "--json")
    assert code == 0
    assert {d["scenario"] for d in json.loads(out)} == {"tiny-smoke"}


def test_report_tolerates_damaged_records(tmp_path, capsys):
    # valid-JSON-but-not-ours lines lose only themselves
    store = str(tmp_path / "s.jsonl")
    run_cli(capsys, "run", "tiny-smoke", *SMOKE, "--store", store, "--quiet")
    with open(store, "a", encoding="utf-8") as fh:
        fh.write("[1, 2]\n")
        fh.write(json.dumps({"v": 1}) + "\n")  # right version, no fields
    code, out, _ = run_cli(capsys, "report", store)
    assert code == 0
    assert "1 cells (1 ok, 0 failed)" in out


def test_compare_subcommand(tmp_path, capsys):
    # compare works off the archived store alone; fill it via the API so
    # the test stays on small, fast scenarios instead of full presets
    from repro import run_campaigns
    from repro.oar import WorkloadConfig

    base = scenarios.ScenarioSpec(
        name="cli-base", months=0.1, clusters=("grisou",),
        families=("refapi",), backlog_faults=2,
        workload=WorkloadConfig(target_utilization=0.25))
    stormy = base.derive(name="cli-stormy", backlog_faults=30)
    store = str(tmp_path / "s.jsonl")
    run_campaigns([base, stormy], seeds=[0, 1], workers=1, store=store)

    code, out, _ = run_cli(capsys, "compare", store,
                           "--baseline", "cli-base")
    assert code == 0
    assert "baseline: cli-base" in out
    assert "cli-stormy" in out


def test_compare_unknown_baseline(tmp_path, capsys):
    store = str(tmp_path / "s.jsonl")
    run_cli(capsys, "run", "tiny-smoke", *SMOKE, "--store", store, "--quiet")
    code, _, err = run_cli(capsys, "compare", store, "--baseline", "nope")
    assert code == 2
    assert "nope" in err


def test_trace_record_inspect_convert_roundtrip(tmp_path, capsys):
    trace_path = str(tmp_path / "rec.jsonl")
    code, _, err = run_cli(capsys, "trace", "record", "tiny-smoke",
                           "--out", trace_path, "--seed", "1",
                           "--months", "0.05")
    assert code == 0
    assert "recorded" in err

    code, out, _ = run_cli(capsys, "trace", "inspect", trace_path)
    assert code == 0
    assert "jobs" in out

    code, out, _ = run_cli(capsys, "trace", "inspect", trace_path, "--json")
    assert code == 0
    stats = json.loads(out)
    assert stats["jobs"] > 0

    swf_path = str(tmp_path / "rec.swf")
    code, _, err = run_cli(capsys, "trace", "convert", trace_path, swf_path)
    assert code == 0
    code, out, _ = run_cli(capsys, "trace", "inspect", swf_path, "--json")
    assert code == 0
    assert json.loads(out)["jobs"] == stats["jobs"]


def test_trace_inspect_builtin_name(capsys):
    code, out, _ = run_cli(capsys, "trace", "inspect", "tiny-g5k")
    assert code == 0
    assert "308 jobs" in out


def test_trace_inspect_missing_file(capsys):
    code, _, err = run_cli(capsys, "trace", "inspect", "missing.jsonl")
    assert code == 2
    assert "cannot load trace" in err


def test_trace_record_unknown_preset(tmp_path, capsys):
    code, _, err = run_cli(capsys, "trace", "record", "nope",
                           "--out", str(tmp_path / "t.jsonl"))
    assert code == 2
    assert "nope" in err


def test_run_with_trace_override(tmp_path, capsys):
    trace_path = str(tmp_path / "rec.jsonl")
    run_cli(capsys, "trace", "record", "tiny-smoke", "--out", trace_path,
            "--months", "0.05")
    code, out, _ = run_cli(capsys, "run", "tiny-smoke", "--trace", trace_path,
                           "--months", "0.05", "--seeds", "0", "--quiet")
    assert code == 0
    assert "tiny-smoke@trace" in out


def test_trace_inspect_incomplete_record_fails_cleanly(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"nodes": 1, "walltime_s": 5}\n', encoding="utf-8")
    code, _, err = run_cli(capsys, "trace", "inspect", str(bad))
    assert code == 2
    assert "cannot load trace" in err and "submit_s" in err


def test_run_trace_bad_scale_fails_cleanly(capsys):
    code, _, err = run_cli(capsys, "run", "tiny-smoke", "--trace", "tiny-g5k",
                           "--time-scale", "0", *SMOKE)
    assert code == 2
    assert "time_scale must be positive" in err


def test_run_scale_flags_require_trace(capsys):
    code, _, err = run_cli(capsys, "run", "tiny-smoke",
                           "--load-scale", "2", *SMOKE)
    assert code == 2
    assert "--trace" in err


def test_run_trace_preset_end_to_end(capsys):
    code, out, _ = run_cli(capsys, "run", "trace-replay",
                           "--months", "0.1", "--seeds", "0", "--quiet")
    assert code == 0
    assert "trace-replay" in out


def test_run_with_strategy_override(capsys):
    code, out, _ = run_cli(capsys, "run", "tiny-smoke", "--months", "0.05",
                           "--seeds", "0", "--strategy", "easy-backfill",
                           "--json", "--quiet")
    assert code == 0
    (doc,) = json.loads(out)
    assert doc["report"]["strategy"] == "easy-backfill"


def test_run_with_unknown_strategy(capsys):
    code, _, err = run_cli(capsys, "run", "tiny-smoke", "--strategy",
                           "no-such-policy", "--quiet")
    assert code == 2
    assert "no-such-policy" in err
    assert "easy-backfill" in err  # the error lists the known names


def test_run_help_lists_strategies(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "easy-backfill" in out and "steal-agreement" in out


def test_scoreboard_subcommand(capsys):
    code, out, err = run_cli(
        capsys, "scoreboard", "elastic-burst", "--months", "0.05",
        "--seeds", "0", "--strategies", "easy-backfill,common-pool",
        "--quiet")
    assert code == 0
    lines = out.splitlines()
    assert "turnaround_mean_s" in lines[0]
    assert "►" in lines[1]
    # Both contenders present, keyed scenario+strategy.
    assert any("elastic-burst+easy-backfill" in l for l in lines)
    assert any("elastic-burst+common-pool" in l for l in lines)


def test_scoreboard_json_and_store_resume(tmp_path, capsys):
    store = str(tmp_path / "sb.jsonl")
    code, out, _ = run_cli(
        capsys, "scoreboard", "elastic-burst", "--months", "0.05",
        "--seeds", "0", "--strategies", "easy-backfill,common-pool",
        "--store", store, "--json")
    assert code == 0
    docs = json.loads(out)
    assert [d["rank"] for d in docs] == [1, 2]
    assert all(d["metric"] == "turnaround_mean_s" for d in docs)
    assert docs[0]["mean"] <= docs[1]["mean"]
    # Resume pays nothing: every cell comes back cached.
    code, _, err = run_cli(
        capsys, "scoreboard", "elastic-burst", "--months", "0.05",
        "--seeds", "0", "--strategies", "easy-backfill,common-pool",
        "--store", store, "--resume")
    assert code == 0
    assert err.count("cached") == 2


def test_scoreboard_unknown_strategy(capsys):
    code, _, err = run_cli(capsys, "scoreboard", "--strategies",
                           "easy-backfill,bogus")
    assert code == 2
    assert "bogus" in err


def test_scoreboard_empty_strategies(capsys):
    code, _, err = run_cli(capsys, "scoreboard", "--strategies", ",")
    assert code == 2
    assert "empty" in err
