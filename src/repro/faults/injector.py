"""Poisson fault injector and ground-truth registry.

The real testbed accumulates problems continuously: maintenance operations
reset BIOS options, replacement disks arrive with different firmware, cables
get re-seated wrong, upgrades break services (slide 12).  The injector
models that as a Poisson arrival process over the weighted fault catalog.

The :class:`GroundTruth` registry records every injected fault so campaigns
can score the framework: detection latency, fraction detected, bugs fixed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from ..util.events import Simulator
from ..util.rng import RngStreams
from .catalog import (
    FAULT_SPECS,
    FaultContext,
    FaultInstance,
    FaultKind,
    apply_fault,
    revert_fault,
)

__all__ = ["GroundTruth", "FaultInjector"]


class GroundTruth:
    """Registry of all fault instances ever injected."""

    def __init__(self) -> None:
        self._faults: list[FaultInstance] = []

    def record(self, instance: FaultInstance) -> None:
        self._faults.append(instance)

    @property
    def all(self) -> tuple[FaultInstance, ...]:
        return tuple(self._faults)

    def active(self) -> list[FaultInstance]:
        return [f for f in self._faults if f.active]

    def active_matching(self, kind: FaultKind, target: str) -> Optional[FaultInstance]:
        for f in self._faults:
            if f.matches(kind, target):
                return f
        return None

    def active_on_cluster(self, cluster: str) -> list[FaultInstance]:
        return [f for f in self._faults if f.active and f.cluster == cluster]

    def active_on_site(self, site: str) -> list[FaultInstance]:
        return [f for f in self._faults if f.active and f.site == site]

    def detected(self) -> list[FaultInstance]:
        return [f for f in self._faults if f.detected]

    def undetected_active(self) -> list[FaultInstance]:
        return [f for f in self._faults if f.active and not f.detected]

    def mark_detected(self, instance: FaultInstance, when: float, by: str) -> None:
        if instance.detected_at is None:
            instance.detected_at = when
            instance.detected_by = by

    def detection_latencies(self) -> list[float]:
        return [f.detected_at - f.injected_at for f in self._faults if f.detected]


class FaultInjector:
    """Injects faults at exponential inter-arrival times.

    Parameters
    ----------
    mean_interarrival_s:
        Mean time between fault arrivals across the whole testbed.  The
        default (about one fault every 20 hours) yields bug counts in the
        paper's band over a five-month campaign.
    kinds:
        Restrict injection to a subset of fault kinds (useful in tests
        and focused experiments).
    on_inject:
        Optional callback invoked with each new :class:`FaultInstance`.
    """

    def __init__(
        self,
        sim: Simulator,
        ctx: FaultContext,
        rng_streams: RngStreams,
        mean_interarrival_s: float = 72_000.0,
        kinds: Optional[Iterable[FaultKind]] = None,
        on_inject: Optional[Callable[[FaultInstance], None]] = None,
    ):
        self.sim = sim
        self.ctx = ctx
        self.ground_truth = GroundTruth()
        self.mean_interarrival_s = mean_interarrival_s
        self._rng = rng_streams.stream("fault-injector")
        self._kinds = tuple(kinds) if kinds is not None else tuple(FAULT_SPECS)
        self._weights = np.array([FAULT_SPECS[k].weight for k in self._kinds])
        self._weights = self._weights / self._weights.sum()
        self._on_inject = on_inject
        self._next_id = 1
        self._running = False

    # -- one-shot injection (used by tests, examples, campaigns) -------------

    def inject(self, kind: Optional[FaultKind] = None) -> Optional[FaultInstance]:
        """Inject one fault now; returns None if no eligible target exists."""
        if kind is None:
            kind = self._kinds[int(self._rng.choice(len(self._kinds), p=self._weights))]
        instance = apply_fault(kind, self.ctx, self._rng, self._next_id, self.sim.now)
        if instance is None:
            return None
        self._next_id += 1
        self.ground_truth.record(instance)
        if self._on_inject is not None:
            self._on_inject(instance)
        return instance

    def fix(self, instance: FaultInstance) -> None:
        """Revert a fault (operator action); records the fix time."""
        revert_fault(instance, self.ctx)
        instance.fixed_at = self.sim.now

    # -- background process ------------------------------------------------------

    def start(self) -> None:
        """Start the Poisson arrival process (idempotent)."""
        if not self._running:
            self._running = True
            self.sim.process(self._run(), name="fault-injector")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        while self._running:
            delay = float(self._rng.exponential(self.mean_interarrival_s))
            yield self.sim.timeout(delay)
            if not self._running:
                return
            # A draw may find no eligible target (e.g. every site already
            # has a flaky API); try a couple of other kinds before giving up
            # this arrival.
            for _ in range(3):
                if self.inject() is not None:
                    break
