"""repro: a full reproduction of *"Towards Trustworthy Testbeds thanks to
Throughout Testing"* (Lucas Nussbaum, REPPAR @ IPDPS 2017).

The package simulates the Grid'5000 testbed (8 sites / 32 clusters /
894 nodes / 8490 cores) and the complete testing framework the paper
describes: g5k-checks, OAR, Kadeploy, KaVLAN, monitoring, a Jenkins-shaped
CI server, the external availability-aware test scheduler, 16 test-script
families (751 configurations) and the closed bug-filing/fixing loop.

Quickstart::

    from repro import build_framework
    fw = build_framework(seed=1)
    fw.start()
    fw.run_until(7 * 86400)          # one simulated week
    print(fw.tracker.filed_count, "bugs filed")
"""

from .core import (
    CampaignConfig,
    CampaignReport,
    TestingFramework,
    build_framework,
    run_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "build_framework",
    "TestingFramework",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
    "__version__",
]
