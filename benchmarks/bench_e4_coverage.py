"""E4 — slide 21: coverage, 751 test configurations over 16 families.

Regenerates the coverage table from the family registry against the
synthetic testbed and checks the exact per-family counts.
"""

from repro.checksuite import ALL_FAMILIES, coverage_table, total_configurations
from repro.testbed import build_grid5000

from conftest import paper_row, print_table

_PAPER_COUNTS = {
    "environments": 448,
    "refapi": 32, "oarproperties": 32, "stdenv": 32, "paralleldeploy": 32,
    "multireboot": 32, "multideploy": 32, "console": 32,
    "oarstate": 8, "cmdline": 8, "sidapi": 8, "kwapi": 8, "kavlan": 8,
    "dellbios": 18, "mpigraph": 12, "disk": 9,
}


def bench_e4_coverage(benchmark):
    testbed = build_grid5000()
    table = benchmark(coverage_table, testbed)
    rows = [paper_row(f"{name} configurations",
                      _PAPER_COUNTS.get(name, "-"), count)
            for name, count in sorted(table.items(), key=lambda kv: -kv[1])]
    rows.append(paper_row("TOTAL", 751, total_configurations(testbed)))
    print_table("E4: test coverage (slide 21)", rows)
    assert len(ALL_FAMILIES) == 16
    assert table["environments"] == 448
    assert total_configurations(testbed) == 751
