"""Tests for the metric ring-buffer store."""

import numpy as np
import pytest

from repro.monitoring import MetricStore, RingBuffer
from repro.util import MonitoringError


def test_ring_append_and_last():
    ring = RingBuffer(4)
    ring.append(1.0, 10.0)
    ring.append(2.0, 20.0)
    assert len(ring) == 2
    assert ring.last() == (2.0, 20.0)


def test_ring_empty_last_raises():
    with pytest.raises(MonitoringError):
        RingBuffer(4).last()


def test_ring_wraps_and_keeps_latest():
    ring = RingBuffer(3)
    for i in range(10):
        ring.append(float(i), float(i * 100))
    assert len(ring) == 3
    t, v = ring.window(0.0, 100.0)
    assert list(t) == [7.0, 8.0, 9.0]
    assert list(v) == [700.0, 800.0, 900.0]


def test_ring_window_bounds():
    ring = RingBuffer(10)
    for i in range(5):
        ring.append(float(i), float(i))
    t, _ = ring.window(1.0, 3.0)  # [from, to)
    assert list(t) == [1.0, 2.0]


def test_ring_capacity_validation():
    with pytest.raises(MonitoringError):
        RingBuffer(0)


def test_store_record_and_stats():
    store = MetricStore()
    for i in range(10):
        store.record("node.power_w", float(i), 100.0 + i)
    stats = store.stats("node.power_w", 0.0, 10.0)
    assert stats.count == 10
    assert stats.mean == pytest.approx(104.5)
    assert stats.minimum == 100.0
    assert stats.maximum == 109.0


def test_store_stats_empty_window():
    store = MetricStore()
    store.record("s", 0.0, 1.0)
    stats = store.stats("s", 100.0, 200.0)
    assert stats.count == 0
    assert np.isnan(stats.mean)


def test_store_unknown_series_raises():
    with pytest.raises(MonitoringError):
        MetricStore().last("ghost")


def test_store_series_names_and_has():
    store = MetricStore()
    store.record("b", 0.0, 1.0)
    store.record("a", 0.0, 1.0)
    assert store.series_names() == ["a", "b"]
    assert store.has_series("a") and not store.has_series("c")


def test_store_bounded_memory():
    store = MetricStore(capacity_per_series=16)
    for i in range(10_000):
        store.record("s", float(i), 0.0)
    t, _ = store.window("s", 0.0, 1e9)
    assert len(t) == 16


# -- wraparound boundaries -----------------------------------------------------
#
# The probes lean on rings behaving exactly at the wrap seams: a month-long
# campaign wraps every series many times over, and a off-by-one at capacity
# would silently clip window queries and stats.


def _filled(capacity, n):
    ring = RingBuffer(capacity)
    for i in range(n):
        ring.append(float(i), float(i * 10))
    return ring


def test_ring_exactly_at_capacity_keeps_everything():
    ring = _filled(8, 8)
    assert len(ring) == 8
    t, v = ring.window(0.0, 100.0)
    assert list(t) == [float(i) for i in range(8)]
    assert list(v) == [float(i * 10) for i in range(8)]
    assert ring.last() == (7.0, 70.0)


def test_ring_capacity_plus_one_drops_only_oldest():
    ring = _filled(8, 9)
    assert len(ring) == 8
    t, _ = ring.window(0.0, 100.0)
    assert list(t) == [float(i) for i in range(1, 9)]
    assert ring.last() == (8.0, 80.0)
    # the evicted sample is gone even from a window that would contain it
    t0, _ = ring.window(0.0, 1.0)
    assert list(t0) == []


def test_ring_multiple_full_wraps_window_and_order():
    # 5 capacity, 23 appends: head lands mid-buffer after 4+ wraps
    ring = _filled(5, 23)
    assert len(ring) == 5
    t, v = ring.window(0.0, 1000.0)
    assert list(t) == [18.0, 19.0, 20.0, 21.0, 22.0]  # chronological
    assert list(v) == [180.0, 190.0, 200.0, 210.0, 220.0]
    # window straddling the physical wrap point stays chronological
    t2, _ = ring.window(19.0, 22.0)
    assert list(t2) == [19.0, 20.0, 21.0]


def test_stats_at_capacity_boundaries():
    store = MetricStore(capacity_per_series=4)
    for i in range(4):  # exactly at capacity
        store.record("s", float(i), float(i))
    stats = store.stats("s", 0.0, 10.0)
    assert (stats.count, stats.minimum, stats.maximum) == (4, 0.0, 3.0)
    assert stats.mean == pytest.approx(1.5)

    store.record("s", 4.0, 4.0)  # capacity + 1: oldest sample evicted
    stats = store.stats("s", 0.0, 10.0)
    assert (stats.count, stats.minimum, stats.maximum) == (4, 1.0, 4.0)
    assert stats.mean == pytest.approx(2.5)

    for i in range(5, 13):  # several more full wraps
        store.record("s", float(i), float(i))
    stats = store.stats("s", 0.0, 100.0)
    assert (stats.count, stats.minimum, stats.maximum) == (4, 9.0, 12.0)


def test_store_series_handle_is_live():
    # probes hold direct ring references; the handle and record() must hit
    # the same ring
    store = MetricStore(capacity_per_series=4)
    ring = store.series("node.cpu")
    ring.append(1.0, 0.5)
    store.record("node.cpu", 2.0, 0.7)
    assert store.series("node.cpu") is ring
    assert len(ring) == 2
    assert store.last("node.cpu") == (2.0, 0.7)


# -- column blocks -------------------------------------------------------------
#
# The park sweeps pack per-node rings into one RingColumnBlock and append
# with a single scatter; every column must behave exactly like a
# stand-alone RingBuffer, including across the wrap seams.


def test_column_ring_matches_ring_buffer_through_wraps():
    from repro.monitoring import RingColumnBlock

    block = RingColumnBlock(columns=3, capacity=5)
    rings = [block.ring(c) for c in range(3)]
    oracles = [RingBuffer(5) for _ in range(3)]
    for i in range(23):  # multiple full wraps
        cols = np.arange(3)
        values = np.array([float(i), float(i * 10), float(-i)])
        block.append_rows(cols, float(i), values)
        for oracle, v in zip(oracles, values):
            oracle.append(float(i), float(v))
    for ring, oracle in zip(rings, oracles):
        assert len(ring) == len(oracle)
        assert ring.last() == oracle.last()
        t, v = ring.window(0.0, 1000.0)
        ot, ov = oracle.window(0.0, 1000.0)
        assert list(t) == list(ot) and list(v) == list(ov)
        t2, _ = ring.window(19.0, 22.0)  # straddles the physical wrap
        ot2, _ = oracle.window(19.0, 22.0)
        assert list(t2) == list(ot2)


def test_column_ring_scalar_and_scatter_appends_interleave():
    from repro.monitoring import RingColumnBlock

    block = RingColumnBlock(columns=2, capacity=4)
    ring = block.ring(0)
    ring.append(0.0, 1.0)                             # scalar
    block.append_rows(np.array([0, 1]), 1.0, np.array([2.0, 9.0]))  # scatter
    ring.append(2.0, 3.0)                             # scalar again
    t, v = ring.window(0.0, 10.0)
    assert list(t) == [0.0, 1.0, 2.0]
    assert list(v) == [1.0, 2.0, 3.0]
    assert len(block.ring(1)) == 1


def test_column_ring_empty_last_raises():
    from repro.monitoring import RingColumnBlock

    with pytest.raises(MonitoringError):
        RingColumnBlock(columns=1, capacity=4).ring(0).last()


def test_store_bind_series_adopts_and_guards():
    from repro.monitoring import RingColumnBlock

    store = MetricStore(capacity_per_series=4)
    block = RingColumnBlock(columns=1, capacity=store.capacity)
    assert store.bind_series("n1.power_w", block.ring(0))
    store.record("n1.power_w", 1.0, 50.0)            # lands in the column
    assert store.last("n1.power_w") == (1.0, 50.0)
    assert len(block.ring(0)) == 1
    # A taken name refuses the bind — the caller must fall back.
    assert not store.bind_series("n1.power_w", block.ring(0))
    store.series("plain")
    assert not store.bind_series("plain", block.ring(0))
