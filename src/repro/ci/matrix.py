"""Matrix Project + Matrix Reloaded: jobs as matrices of options.

Slide 15: Jenkins' *Matrix Project* plugin runs one job over the cartesian
product of its axes — ``test_environments: 14 images x 32 clusters = 448
configurations`` — and *Matrix Reloaded* re-runs a chosen subset of cells
(typically the failed ones) without re-running the whole matrix.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..util.errors import CiError
from .job import Build, BuildStatus
from .server import JenkinsServer

__all__ = ["MatrixProject", "matrix_reloaded"]


@dataclass
class MatrixProject:
    """A job parameterized by the cartesian product of its axes."""

    job_name: str
    axes: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, values in self.axes.items():
            if not values:
                raise CiError(f"matrix axis {name!r} has no values")
            if len(set(values)) != len(values):
                raise CiError(f"matrix axis {name!r} has duplicate values")

    @property
    def cell_count(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def cells(self) -> list[dict[str, Any]]:
        """All axis combinations, in deterministic order."""
        names = sorted(self.axes)
        combos = itertools.product(*(self.axes[n] for n in names))
        return [dict(zip(names, combo)) for combo in combos]

    def trigger_all(self, server: JenkinsServer, cause: str = "matrix",
                    cells: Optional[list[dict[str, Any]]] = None) -> list[Build]:
        """Enqueue one build per cell (or per given subset of cells)."""
        return [server.trigger(self.job_name, parameters=cell, cause=cause)
                for cell in (cells if cells is not None else self.cells())]

    def latest_results(self, server: JenkinsServer) -> dict[tuple, Optional[BuildStatus]]:
        """Last finished status per cell (None = never completed)."""
        job = server.job(self.job_name)
        names = sorted(self.axes)
        results: dict[tuple, Optional[BuildStatus]] = {}
        for cell in self.cells():
            key = tuple(cell[n] for n in names)
            last = job.last_build(parameters=cell)
            results[key] = last.status if last else None
        return results


def matrix_reloaded(project: MatrixProject, server: JenkinsServer,
                    statuses: tuple[BuildStatus, ...] = (BuildStatus.FAILURE,
                                                         BuildStatus.UNSTABLE,
                                                         BuildStatus.ABORTED),
                    cause: str = "matrix-reloaded") -> list[Build]:
    """Re-trigger the cells whose last result is in ``statuses``.

    This is the *Matrix Reloaded* plugin behaviour: retry the failed subset
    of a matrix without burning resources on the cells that passed.
    """
    names = sorted(project.axes)
    retry_cells = []
    for cell in project.cells():
        last = server.job(project.job_name).last_build(parameters=cell)
        if last is not None and last.status in statuses:
            retry_cells.append(dict(zip(names, (cell[n] for n in names))))
    return project.trigger_all(server, cause=cause, cells=retry_cells)
