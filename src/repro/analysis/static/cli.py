"""The ``repro-lint`` command line (also ``python -m repro.analysis.static``).

Exit codes: 0 clean (every finding baselined or suppressed), 1 new
findings, 2 usage error.  ``--json`` emits a machine-readable report (the
CI lint job uploads it as an artifact); ``--update-baseline`` rewrites the
committed baseline from the current findings.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .baseline import (apply_baseline, baseline_from_findings, load_baseline,
                       save_baseline)
from .engine import analyze_paths
from .rules import RULES

__all__ = ["main"]

DEFAULT_BASELINE = "detlint-baseline.json"
DEFAULT_PATHS = ("src/repro",)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & kernel-protocol static analysis "
                    "for the repro codebase")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint "
                             f"(default: {DEFAULT_PATHS[0]})")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline JSON of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE} if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline: report every finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings and exit 0")
    parser.add_argument("--select", action="append", metavar="RULE",
                        help="only run the named rule (repeatable)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON report on stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _list_rules() -> None:
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        scope = ", ".join(rule.scope) if rule.scope else "all files"
        print(f"{rule_id}  {rule.title}  [{scope}]")
        print(f"        {rule.rationale}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0

    rules = None
    if args.select:
        unknown = sorted(set(r.upper() for r in args.select) - set(RULES))
        if unknown:
            print(f"repro-lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [RULES[r.upper()] for r in args.select]

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    findings, suppressed = analyze_paths(args.paths, rules)

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.update_baseline:
        save_baseline(baseline_path, baseline_from_findings(findings))
        print(f"repro-lint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    baseline_doc = {"version": 1, "findings": []}
    if not args.no_baseline:
        if os.path.exists(baseline_path):
            baseline_doc = load_baseline(baseline_path)
        elif args.baseline is not None:
            print(f"repro-lint: baseline not found: {baseline_path}",
                  file=sys.stderr)
            return 2
    new, baselined, stale = apply_baseline(findings, baseline_doc)

    if args.as_json:
        report = {
            "tool": "detlint",
            "paths": list(args.paths),
            "findings": [dict(f.to_dict(), baselined=(f in baselined))
                         for f in findings],
            "summary": {
                "new": len(new),
                "baselined": len(baselined),
                "suppressed": suppressed,
                "stale_baseline_entries": len(stale),
            },
        }
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for f in new:
            print(f.format())
        parts = [f"{len(new)} new finding(s)"]
        if baselined:
            parts.append(f"{len(baselined)} baselined")
        if suppressed:
            parts.append(f"{suppressed} suppressed")
        if stale:
            parts.append(f"{len(stale)} stale baseline entr"
                         f"{'y' if len(stale) == 1 else 'ies'} "
                         "(run --update-baseline)")
        print(f"repro-lint: {', '.join(parts)}")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
