"""DET003 fixture: stray-randomness positives and negatives."""

import random
from random import choice

import numpy as np


def stray_randomness():
    a = random.random()  # EXPECT(DET003)
    b = random.randint(0, 9)  # EXPECT(DET003)
    c = choice([1, 2, 3])  # EXPECT(DET003)
    d = np.random.default_rng()  # EXPECT(DET003)
    e = np.random.rand(3)  # EXPECT(DET003)
    return a, b, c, d, e


def negatives(rngs):
    stream = rngs.stream("faults")  # negative: the named-stream factory
    draw = stream.integers(0, 10)  # negative: a Generator drawn from it
    seq = np.random.SeedSequence(entropy=7)  # negative: deterministic
    return stream, draw, seq
