"""Integration tests: the fully-wired framework closes the loop."""

from repro.checksuite import family_by_name
from repro.core import build_framework
from repro.faults import FaultKind
from repro.oar import WorkloadConfig
from repro.testbed import CLUSTER_SPECS
from repro.util import DAY, HOUR

SMALL = ("grisou", "grimoire", "graoully")


def make_world(seed=31, families=("refapi", "oarstate", "console", "dellbios"),
               **kwargs):
    specs = [s for s in CLUSTER_SPECS if s.name in SMALL]
    return build_framework(
        seed=seed,
        specs=specs,
        families=[family_by_name(n) for n in families],
        workload_config=WorkloadConfig(target_utilization=0.25),
        **kwargs,
    )


def test_jobs_registered_per_family():
    fw = make_world()
    assert set(fw.api.list_jobs()) == {
        "test_refapi", "test_oarstate", "test_console", "test_dellbios",
    }


def test_detect_file_fix_loop():
    """The paper's whole point: fault -> detection -> bug -> fix."""
    fw = make_world()
    inst = fw.injector.inject(FaultKind.CONSOLE_BROKEN)
    fw.start(workload=False, faults=False)
    fw.run_until(30 * DAY)
    assert inst.detected
    assert inst.detected_by == "console"
    explained = [b for b in fw.tracker.bugs if b.fault is inst]
    assert len(explained) == 1
    assert not inst.active  # operators reverted it
    assert fw.machines[inst.target].actual.console_ok
    # after the fix, console tests pass again
    late = fw.history.select(family="console", cluster=inst.cluster,
                             since=inst.fixed_at + DAY)
    assert late and all(r.status == "SUCCESS" for r in late)


def test_success_rate_recovers_after_fix():
    fw = make_world(families=("dellbios",))
    inst = fw.injector.inject(FaultKind.BIOS_VERSION_SKEW)
    fw.start(workload=False, faults=False)
    fw.run_until(40 * DAY)
    early = fw.history.success_rate(0, 5 * DAY, family="dellbios")
    late = fw.history.success_rate(35 * DAY, 40 * DAY, family="dellbios")
    assert late >= early


def test_janitor_revives_crashed_nodes():
    fw = make_world(families=("oarstate",))
    fw.start(workload=False, faults=False, testing=False)
    fw.machines["grisou-5"].crash()
    fw.run_until(3 * HOUR)
    assert fw.machines["grisou-5"].available


def test_gremlin_crashes_faulty_machines():
    fw = make_world(families=("oarstate",))
    fw.start(workload=False, faults=False, testing=False)
    node = fw.machines["grimoire-2"]
    node.crash_mtbf_s = 2 * HOUR
    node.boot_failure_prob = 1.0  # janitor cannot revive it
    fw.run_until(DAY)
    assert not node.available


def test_build_logs_carry_findings():
    fw = make_world(families=("console",))
    inst = fw.injector.inject(FaultKind.CONSOLE_BROKEN)
    fw.start(workload=False, faults=False)
    fw.run_until(DAY)
    job = fw.jenkins.job("test_console")
    failed = [b for b in job.builds
              if b.parameters.get("cluster") == inst.cluster and
              b.status is not None and b.status.value == "FAILURE"]
    assert failed
    assert any("console" in line for line in failed[0].log)


def test_refapi_daily_archive_committed():
    fw = make_world(families=("oarstate",))
    fw.start(workload=False, faults=False, testing=False)
    fw.run_until(3 * DAY + HOUR)
    # daily snapshots are content-addressed: unchanged description -> one
    # version; the archive query still answers for any time
    assert fw.refapi.at_time(2 * DAY).version == fw.refapi.head.version


def test_start_idempotent():
    fw = make_world()
    fw.start(workload=False, faults=False)
    fw.start(workload=False, faults=False)
    fw.run_until(HOUR)  # would double-trigger if start weren't guarded
    stats = fw.scheduler.stats()
    assert stats["cells"] == len(fw.scheduler.cells)


def test_outcomes_collected():
    fw = make_world(families=("oarstate",))
    fw.start(workload=False, faults=False)
    fw.run_until(DAY)
    assert fw.outcomes
    assert all(o.family == "oarstate" for o in fw.outcomes)


def test_workload_and_testing_coexist():
    fw = make_world(families=("refapi",))
    fw.start(faults=False)
    fw.run_until(2 * DAY)
    assert fw.workload.submitted > 0
    assert len(fw.history.records) > 0
