#!/usr/bin/env python
"""Kadeploy at scale: the slide-8 claim "200 nodes deployed in ~5 minutes".

Deploys debian9-min on growing node counts and prints the scalability
curve — thanks to the chain broadcast, deployment time is almost flat in
the number of nodes.

Run:  python examples/deploy_at_scale.py
"""

from repro.faults import ServiceHealth
from repro.kadeploy import Kadeploy
from repro.nodes import MachinePark
from repro.testbed import build_grid5000
from repro.util import RngStreams, Simulator


def deploy_once(n_nodes: int, seed: int = 7) -> tuple[float, float]:
    sim = Simulator()
    rngs = RngStreams(seed=seed)
    testbed = build_grid5000()
    machines = MachinePark.from_testbed(sim, testbed, rngs)
    kadeploy = Kadeploy(sim, machines, ServiceHealth(), rngs)
    # modern 10G clusters, like a real wide deployment
    pool = [n.uid for c in ("paravance", "grisou", "parasilo", "ecotype",
                            "nova", "econome", "graoully", "grele")
            for n in testbed.cluster(c).nodes]
    uids = pool[:n_nodes]
    holder = {}

    def driver():
        holder["result"] = yield sim.process(kadeploy.deploy(uids, "debian9-min"))

    sim.process(driver())
    sim.run()
    result = holder["result"]
    return result.duration_s, result.success_rate


def main() -> None:
    print(f"{'nodes':>6} {'duration':>10} {'success':>8}")
    for n in (10, 25, 50, 100, 200):
        duration, success = deploy_once(n)
        print(f"{n:>6} {duration / 60:>8.1f}mn {success:>8.0%}")
    print("\npaper (slide 8): 200 nodes deployed in ~5 minutes")


if __name__ == "__main__":
    main()
