"""The campaign service: a deduplicating matrix runner behind the wire.

A ``SUBM`` document describes a seed × scenario matrix::

    {"scenarios": ["tiny-smoke", {...spec dict...}],
     "seeds": [0, 1, 2], "months": 0.2, "workers": 2}

The service funnels every matrix through one shared
:class:`~repro.core.store.CampaignStore` with ``resume=True``, so the
store acts as a *global dedupe cache*: overlapping sweeps from any number
of clients pay for each unique ``(spec-hash, seed, months)`` cell exactly
once — later submissions stream ``cached`` cells straight from the
archive.  A lock serializes matrix execution (one batch at a time keeps
the shared warm worker pool and the append-only store simple); progress
still streams per cell, in completion order.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Union

from .. import scenarios
from ..core.batch import CampaignRun, run_campaigns
from ..core.store import CampaignStore, MemoryBackend, StoreBackend
from ..scenarios.spec import ScenarioSpec

__all__ = ["CampaignService"]

#: Ceiling on one submitted matrix — a typo'd seed range must not wedge
#: the service for everyone.
MAX_CELLS = 4096


class CampaignService:
    """Validate, dedupe, and execute submitted campaign matrices."""

    def __init__(self, store: Union[CampaignStore, StoreBackend, str,
                                    None] = None):
        if store is None:
            store = CampaignStore(MemoryBackend())
        elif not isinstance(store, CampaignStore):
            store = CampaignStore(store)
        self.store = store
        self._lock = threading.Lock()

    def run_matrix(
        self,
        doc: dict,
        on_cell: Optional[Callable[[CampaignRun, bool, int, int],
                                   None]] = None,
    ) -> list[CampaignRun]:
        """Run one submitted matrix; returns the runs in matrix order.

        Raises ``KeyError``/``TypeError``/``ValueError`` on a bad
        document (the session maps those onto ``ERR arg``).
        """
        specs, seeds, months, workers, supervision = self._validate(doc)
        total = len(specs) * len(seeds)
        counter = [0]

        def progress(run: CampaignRun, cached: bool) -> None:
            counter[0] += 1
            if on_cell is not None:
                on_cell(run, cached, counter[0], total)

        with self._lock:
            return run_campaigns(
                specs, seeds=seeds, workers=workers, months=months,
                store=self.store, resume=True, on_cell=progress,
                **supervision)

    def stored_runs(self) -> list[dict]:
        """Every archived cell as a JSON document (RPRT store answer)."""
        return [
            {"scenario": r.scenario, "seed": r.seed, "spec_hash": r.spec_hash,
             "error": r.error,
             "report": r.report.to_dict() if r.report is not None else None}
            for r in self.store.runs(disambiguate=False)
        ]

    def _validate(self, doc: dict):
        if not isinstance(doc, dict):
            raise TypeError("matrix document must be a JSON object")
        raw_specs = doc.get("scenarios")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ValueError("'scenarios' must be a non-empty list")
        specs: list[ScenarioSpec] = []
        for item in raw_specs:
            if isinstance(item, str):
                specs.append(scenarios.get(item))  # KeyError lists presets
            elif isinstance(item, dict):
                specs.append(ScenarioSpec.from_dict(item))
            else:
                raise TypeError(
                    "each scenario must be a preset name or a spec object")
        for spec in specs:
            if not spec.name or any(ch.isspace() for ch in spec.name):
                raise ValueError(
                    f"scenario name {spec.name!r} not wire-safe")
        raw_seeds = doc.get("seeds", [0])
        if not isinstance(raw_seeds, list) or not raw_seeds:
            raise ValueError("'seeds' must be a non-empty list")
        seeds = [int(s) for s in raw_seeds]
        months = doc.get("months")
        if months is not None:
            months = float(months)
            if not months > 0:
                raise ValueError("'months' must be positive")
        workers = int(doc.get("workers", 1))
        if workers < 1:
            raise ValueError("'workers' must be >= 1")
        if len(specs) * len(seeds) > MAX_CELLS:
            raise ValueError(
                f"matrix of {len(specs) * len(seeds)} cells exceeds the "
                f"{MAX_CELLS}-cell service limit")
        # Optional supervision knobs (see run_campaigns): a remote
        # submitter may bound hung cells and retry/quarantine crashers.
        supervision: dict = {}
        if doc.get("cell_timeout_s") is not None:
            timeout = float(doc["cell_timeout_s"])
            if not timeout > 0:
                raise ValueError("'cell_timeout_s' must be positive")
            supervision["cell_timeout_s"] = timeout
        if doc.get("max_cell_attempts") is not None:
            attempts = int(doc["max_cell_attempts"])
            if attempts < 1:
                raise ValueError("'max_cell_attempts' must be >= 1")
            supervision["max_cell_attempts"] = attempts
        return specs, seeds, months, workers, supervision
