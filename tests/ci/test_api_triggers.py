"""Tests for the REST-shaped API and periodic triggers."""

import json

import pytest

from repro.ci import BuildStatus, JenkinsApi, JenkinsServer, PeriodicTrigger
from repro.util import CiError, HOUR, Simulator


@pytest.fixture()
def jenkins():
    sim = Simulator()
    server = JenkinsServer(sim, executors=4)

    def runner(build):
        yield sim.timeout(30.0)
        return (BuildStatus.FAILURE if build.parameters.get("cluster") == "bad"
                else BuildStatus.SUCCESS)

    server.register_job("check", runner, description="a check")
    return sim, server, JenkinsApi(server)


def test_list_jobs(jenkins):
    _, _, api = jenkins
    assert api.list_jobs() == ["check"]


def test_job_info_shape(jenkins):
    sim, server, api = jenkins
    server.trigger("check", parameters={"cluster": "ok"})
    sim.run()
    info = api.job_info("check")
    assert info["name"] == "check"
    assert info["lastCompletedBuild"]["result"] == "SUCCESS"
    assert len(info["builds"]) == 1
    json.dumps(info)  # JSON-serializable end to end


def test_build_info_includes_log(jenkins):
    sim, server, api = jenkins
    build = server.trigger("check")
    sim.run()
    doc = api.build_info("check", build.number)
    assert doc["result"] == "SUCCESS"
    assert any("finished" in line for line in doc["log"])


def test_build_info_unknown_number(jenkins):
    _, _, api = jenkins
    with pytest.raises(CiError):
        api.build_info("check", 99)


def test_builds_matching_filters_parameters(jenkins):
    sim, server, api = jenkins
    server.trigger("check", parameters={"cluster": "ok"})
    server.trigger("check", parameters={"cluster": "bad"})
    sim.run()
    bad = api.builds_matching("check", parameters={"cluster": "bad"})
    assert len(bad) == 1
    assert bad[0]["result"] == "FAILURE"


def test_builds_matching_since(jenkins):
    sim, server, api = jenkins
    server.trigger("check")
    sim.run(until=HOUR)
    server.trigger("check")
    sim.run(until=2 * HOUR)
    recent = api.builds_matching("check", since=HOUR)
    assert len(recent) == 1


def test_queue_info(jenkins):
    sim, server, api = jenkins
    for _ in range(6):
        server.trigger("check")
    sim.run(until=1.0)
    info = api.queue_info()
    assert info["busy_executors"] == 4
    assert info["queue_length"] == 2
    sim.run()


def test_periodic_trigger_fires_on_schedule(jenkins):
    sim, server, _ = jenkins
    trigger = PeriodicTrigger(sim, server, "check", period_s=HOUR)
    trigger.start()
    sim.run(until=5.5 * HOUR)
    trigger.stop()
    assert trigger.fired == 6  # t=0,1h,...,5h
    assert len(server.job("check").builds) == 6


def test_periodic_trigger_initial_delay_and_params(jenkins):
    sim, server, _ = jenkins
    counter = {"n": 0}

    def params():
        counter["n"] += 1
        return {"round": str(counter["n"])}

    trigger = PeriodicTrigger(sim, server, "check", period_s=HOUR,
                              parameters_fn=params, initial_delay_s=600.0)
    trigger.start()
    sim.run(until=700.0)
    trigger.stop()
    builds = server.job("check").builds
    assert len(builds) == 1
    assert builds[0].queued_at == 600.0
    assert builds[0].parameters == {"round": "1"}
    sim.run()
