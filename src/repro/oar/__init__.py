"""OAR-shaped resource manager: request language, database, scheduler."""

from .database import OarDatabase, properties_from_description
from .gantt import Gantt, NodeTimeline, Reservation
from .jobs import Job, JobState
from .request import (
    ALL_NODES,
    BoolOp,
    Comparison,
    JobRequest,
    NotOp,
    PropExpr,
    RequestPart,
    format_walltime,
    parse_expression,
    parse_request,
)
from .server import OarServer
from .traces import (
    TraceRecord,
    TraceRecorder,
    TraceReplayConfig,
    TraceReplayGenerator,
    WorkloadTrace,
    load_trace,
    parse_swf,
    record_scenario,
    save_trace,
)
from .workload import WorkloadConfig, WorkloadGenerator, WorkloadSource

__all__ = [
    "ALL_NODES",
    "PropExpr",
    "Comparison",
    "BoolOp",
    "NotOp",
    "RequestPart",
    "JobRequest",
    "parse_expression",
    "parse_request",
    "format_walltime",
    "OarDatabase",
    "properties_from_description",
    "Gantt",
    "NodeTimeline",
    "Reservation",
    "Job",
    "JobState",
    "OarServer",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayConfig",
    "TraceReplayGenerator",
    "WorkloadTrace",
    "load_trace",
    "parse_swf",
    "record_scenario",
    "save_trace",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadSource",
]
