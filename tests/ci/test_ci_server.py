"""Tests for the Jenkins-shaped server."""

import pytest

from repro.ci import BuildStatus, JenkinsServer
from repro.util import CiError, Simulator


@pytest.fixture()
def jenkins():
    sim = Simulator()
    return sim, JenkinsServer(sim, executors=2)


def quick_runner(sim, duration=60.0, status=BuildStatus.SUCCESS):
    def runner(build):
        build.log_line(sim.now, "doing work")
        yield sim.timeout(duration)
        return status

    return runner


def test_register_and_trigger(jenkins):
    sim, server = jenkins
    server.register_job("smoke", quick_runner(sim))
    build = server.trigger("smoke", parameters={"cluster": "grisou"}, cause="test")
    sim.run()
    assert build.status == BuildStatus.SUCCESS
    assert build.duration_s == 60.0
    assert build.parameters == {"cluster": "grisou"}


def test_duplicate_job_rejected(jenkins):
    sim, server = jenkins
    server.register_job("a", quick_runner(sim))
    with pytest.raises(CiError):
        server.register_job("a", quick_runner(sim))


def test_unknown_job_rejected(jenkins):
    _, server = jenkins
    with pytest.raises(CiError):
        server.trigger("ghost")


def test_build_numbers_increment(jenkins):
    sim, server = jenkins
    server.register_job("j", quick_runner(sim))
    builds = [server.trigger("j") for _ in range(3)]
    sim.run()
    assert [b.number for b in builds] == [1, 2, 3]


def test_executor_pool_limits_parallelism(jenkins):
    sim, server = jenkins  # 2 executors
    server.register_job("j", quick_runner(sim, duration=100.0))
    builds = [server.trigger("j") for _ in range(4)]
    sim.run(until=1.0)
    assert server.busy_executors() == 2
    assert server.queue_length() == 2
    sim.run()
    starts = sorted(b.started_at for b in builds)
    assert starts == [0.0, 0.0, 100.0, 100.0]


def test_failure_status_recorded(jenkins):
    sim, server = jenkins
    server.register_job("bad", quick_runner(sim, status=BuildStatus.FAILURE))
    build = server.trigger("bad")
    sim.run()
    assert build.status == BuildStatus.FAILURE


def test_non_status_return_becomes_failure(jenkins):
    sim, server = jenkins

    def broken(build):
        yield sim.timeout(1.0)
        return "oops"

    server.register_job("broken", broken)
    build = server.trigger("broken")
    sim.run()
    assert build.status == BuildStatus.FAILURE
    assert any("treating as FAILURE" in line for line in build.log)


def test_timeout_aborts_build(jenkins):
    sim, server = jenkins
    server.register_job("slow", quick_runner(sim, duration=10_000.0), timeout_s=100.0)
    build = server.trigger("slow")
    sim.run()
    assert build.status == BuildStatus.ABORTED
    assert build.duration_s == 100.0


def test_abort_running_build(jenkins):
    sim, server = jenkins
    server.register_job("j", quick_runner(sim, duration=1000.0))
    build = server.trigger("j")
    sim.call_in(50.0, server.abort, build)
    sim.run()
    assert build.status == BuildStatus.ABORTED
    assert build.finished_at == 50.0


def test_abort_queued_build_does_not_leak_executor(jenkins):
    sim, server = jenkins
    server.register_job("j", quick_runner(sim, duration=100.0))
    running = [server.trigger("j") for _ in range(2)]
    queued = server.trigger("j")
    sim.call_in(10.0, server.abort, queued)
    sim.run()
    assert queued.status == BuildStatus.ABORTED
    assert queued.started_at is None
    assert all(b.status == BuildStatus.SUCCESS for b in running)
    # pool healthy: a new build can use both executors
    more = [server.trigger("j") for _ in range(2)]
    sim.run()
    assert all(b.status == BuildStatus.SUCCESS for b in more)
    assert server.busy_executors() == 0


def test_abort_finished_build_raises(jenkins):
    sim, server = jenkins
    server.register_job("j", quick_runner(sim, duration=1.0))
    build = server.trigger("j")
    sim.run()
    with pytest.raises(CiError):
        server.abort(build)


def test_done_event_fires(jenkins):
    sim, server = jenkins
    server.register_job("j", quick_runner(sim))
    build = server.trigger("j")
    seen = []

    def waiter():
        b = yield build.done_event
        seen.append((sim.now, b.status))

    sim.process(waiter())
    sim.run()
    assert seen == [(60.0, BuildStatus.SUCCESS)]


def test_build_log_contains_lifecycle(jenkins):
    sim, server = jenkins
    server.register_job("j", quick_runner(sim))
    build = server.trigger("j")
    sim.run()
    text = "\n".join(build.log)
    assert "started on executor" in text
    assert "doing work" in text
    assert "finished: SUCCESS" in text


def test_last_build_with_parameters(jenkins):
    sim, server = jenkins
    job = server.register_job("j", quick_runner(sim))
    server.trigger("j", parameters={"cluster": "a"})
    server.trigger("j", parameters={"cluster": "b"})
    sim.run()
    assert job.last_build({"cluster": "a"}).parameters == {"cluster": "a"}
    assert job.last_build().parameters == {"cluster": "b"}
    assert job.last_build({"cluster": "zzz"}) is None


def test_wait_time_accounts_queueing(jenkins):
    sim, server = jenkins
    server.register_job("j", quick_runner(sim, duration=100.0))
    builds = [server.trigger("j") for _ in range(3)]
    sim.run()
    assert builds[2].wait_time_s == 100.0
