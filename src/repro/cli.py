"""``repro-campaign``: run, archive, and compare scenario campaigns.

Examples::

    repro-campaign --list
    repro-campaign run tiny-smoke --seeds 0,1,2,3 --workers 4
    repro-campaign run paper-baseline --months 1 --store results.jsonl
    repro-campaign run paper-baseline --store results.jsonl --resume
    repro-campaign report results.jsonl
    repro-campaign compare results.jsonl --baseline paper-baseline
    repro-campaign fsck results.jsonl --repair
    repro-campaign run paper-baseline --cell-timeout 900 --cell-attempts 3
    repro-campaign scoreboard elastic-burst --seeds 0,1,2
    repro-campaign run tiny-smoke --strategy common-pool
    repro-campaign trace record tiny-smoke --out trace.jsonl --months 0.2
    repro-campaign trace inspect trace.jsonl
    repro-campaign trace convert archive.swf trace.jsonl
    repro-campaign run tiny-smoke --trace trace.jsonl --seeds 0,1
    repro-campaign tiny-smoke --json > report.json   # legacy implicit "run"

``run --store`` appends every finished cell to a JSONL
:class:`~repro.core.store.CampaignStore`; ``--resume`` then skips cells the
store already holds, so an interrupted sweep re-pays only what is missing.
``report`` and ``compare`` work entirely from the store — no preset code
needed to audit archived results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

from . import scenarios
from .analysis.compare import (
    compare_runs,
    format_comparison,
    format_scoreboard,
    scoreboard,
)
from .core.batch import (
    CampaignRun,
    aggregate_runs,
    run_campaigns,
    summarize_runs,
)
from .core.store import CampaignStore
from .oar.traces import TraceReplayConfig
from .scheduling.policies import get_strategy, strategy_names

__all__ = ["main"]

_SUBCOMMANDS = ("run", "report", "compare", "scoreboard", "trace", "serve",
                "client", "fsck")


def _parse_seeds(text: str) -> list[int]:
    """Comma-separated seed list: '0,1,2' -> [0, 1, 2]."""
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seeds must be a comma-separated integer list, got {text!r}")
    if not seeds:
        raise argparse.ArgumentTypeError("empty seed list")
    return seeds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run closed-loop testbed campaigns from named scenario "
                    "presets; archive, resume, and compare the results.",
    )
    parser.add_argument("--list", action="store_true", dest="list_presets",
                        help="list available presets and exit")
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run a seed x scenario matrix")
    run_p.add_argument("scenario", nargs="*", default=["tiny-smoke"],
                       help="preset name(s); default: tiny-smoke")
    run_p.add_argument("--seeds", type=_parse_seeds, default=[0],
                       metavar="a,b,c",
                       help="comma-separated seed list (default: 0)")
    run_p.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: min(jobs, cpus))")
    run_p.add_argument("--months", type=float, default=None,
                       help="override every scenario's horizon")
    run_p.add_argument("--store", default=None, metavar="PATH",
                       help="archive each finished cell to this JSONL store")
    run_p.add_argument("--resume", action="store_true",
                       help="skip cells the store already holds "
                            "(requires --store)")
    run_p.add_argument("--json", action="store_true",
                       help="emit the full reports as JSON on stdout")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress lines")
    run_p.add_argument("--trace", default=None, metavar="PATH",
                       help="replace every scenario's workload with a "
                            "replay of this trace file (or builtin name)")
    run_p.add_argument("--time-scale", type=float, default=1.0,
                       help="with --trace: multiply submission timestamps "
                            "(0.5 = twice the arrival rate)")
    run_p.add_argument("--load-scale", type=float, default=1.0,
                       help="with --trace: thin (<1) or duplicate (>1) "
                            "the replayed jobs deterministically")
    run_p.add_argument("--strategy", default=None, metavar="NAME",
                       help="override every scenario's scheduling strategy "
                            f"(known: {', '.join(strategy_names())})")
    run_p.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="supervised mode: kill and quarantine any cell "
                            "running longer than this (wall clock)")
    run_p.add_argument("--cell-attempts", type=int, default=1,
                       metavar="N",
                       help="supervised mode: retry a crashing cell up to N "
                            "times with backoff, then quarantine it")

    sb_p = sub.add_parser(
        "scoreboard",
        help="A/B-rank scheduling strategies on one scenario")
    sb_p.add_argument("scenario", nargs="?", default="elastic-burst",
                      help="preset to hold fixed while strategies vary "
                           "(default: elastic-burst)")
    sb_p.add_argument("--strategies", metavar="a,b,c",
                      default="easy-backfill,common-pool,steal-agreement",
                      help="comma-separated strategy names to race "
                           f"(known: {', '.join(strategy_names())})")
    sb_p.add_argument("--seeds", type=_parse_seeds, default=[0],
                      metavar="a,b,c",
                      help="comma-separated seed list (default: 0; use "
                           "several for 95%% confidence intervals)")
    sb_p.add_argument("--months", type=float, default=None,
                      help="override the scenario's horizon")
    sb_p.add_argument("--workers", type=int, default=None,
                      help="worker processes (default: min(jobs, cpus))")
    sb_p.add_argument("--store", default=None, metavar="PATH",
                      help="archive each finished cell to this JSONL store")
    sb_p.add_argument("--resume", action="store_true",
                      help="skip cells the store already holds "
                           "(requires --store)")
    sb_p.add_argument("--metric", default="turnaround_mean_s",
                      help="ranking metric (default: turnaround_mean_s)")
    sb_p.add_argument("--higher-better", action="store_true",
                      help="rank descending (e.g. for node_utilization)")
    sb_p.add_argument("--json", action="store_true",
                      help="emit the ranked rows as JSON on stdout")
    sb_p.add_argument("--quiet", action="store_true",
                      help="suppress per-cell progress lines")

    trace_p = sub.add_parser("trace",
                             help="inspect, convert, and record workload "
                                  "traces")
    trace_sub = trace_p.add_subparsers(dest="trace_cmd")
    ins_p = trace_sub.add_parser("inspect",
                                 help="summarize a trace file")
    ins_p.add_argument("trace", help="trace file (SWF or JSONL) or builtin "
                                     "trace name")
    ins_p.add_argument("--json", action="store_true",
                       help="emit the stats as JSON on stdout")
    conv_p = trace_sub.add_parser(
        "convert", help="convert between SWF and the JSONL native format")
    conv_p.add_argument("src", help="source trace (format by extension)")
    conv_p.add_argument("dst", help="destination file (.swf writes SWF, "
                                    "anything else JSONL)")
    rec_p = trace_sub.add_parser(
        "record", help="run a scenario and export its workload as a trace")
    rec_p.add_argument("scenario", help="preset name to record")
    rec_p.add_argument("--out", required=True, metavar="PATH",
                       help="trace file to write (JSONL)")
    rec_p.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed")
    rec_p.add_argument("--months", type=float, default=None,
                       help="override the scenario's horizon")

    report_p = sub.add_parser("report",
                              help="summarize an archived store")
    report_p.add_argument("store", help="path to a campaign store (JSONL)")
    report_p.add_argument("--json", action="store_true",
                          help="emit the stored reports as JSON on stdout")

    cmp_p = sub.add_parser("compare",
                           help="per-metric deltas of every scenario in a "
                                "store against a baseline scenario")
    cmp_p.add_argument("store", help="path to a campaign store (JSONL)")
    cmp_p.add_argument("--baseline", required=True,
                       help="scenario name to measure the others against")
    cmp_p.add_argument("--significant", action="store_true",
                       help="only show metrics resolved at 95%% confidence")

    fsck_p = sub.add_parser(
        "fsck", help="audit a campaign store's record integrity")
    fsck_p.add_argument("store", help="path to a campaign store (JSONL)")
    fsck_p.add_argument("--repair", action="store_true",
                        help="atomically rewrite the store keeping only "
                             "verifiable records (checksums legacy lines)")
    fsck_p.add_argument("--json", action="store_true",
                        help="emit the audit counters as JSON on stdout")

    serve_p = sub.add_parser(
        "serve", help="serve the simulator over the wire protocol")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7230,
                         help="TCP port (0 picks an ephemeral one)")
    serve_p.add_argument("--store", default=None, metavar="PATH",
                         help="JSONL campaign store shared by all clients "
                              "(default: in-memory, lost on exit)")

    client_p = sub.add_parser(
        "client", help="run a scenario remotely with the reference client")
    client_p.add_argument("scenario", help="preset name to run")
    client_p.add_argument("--host", default="127.0.0.1")
    client_p.add_argument("--port", type=int, default=7230)
    client_p.add_argument("--seed", type=int, default=0)
    client_p.add_argument("--months", type=float, default=None,
                          help="override the scenario's horizon")
    client_p.add_argument("--json", action="store_true",
                          help="emit the full report as JSON on stdout "
                               "(default: the summary + sha256)")
    return parser


def _normalize_argv(argv: Sequence[str]) -> list[str]:
    """Back-compat: ``repro-campaign tiny-smoke --seeds 0,1`` == ``run ...``
    (including flags-only and bare invocations, which run the default
    preset exactly as the pre-subcommand CLI did)."""
    argv = list(argv)
    if any(a in ("-h", "--help") for a in argv):
        return argv
    head = next((a for a in argv if not a.startswith("-")), None)
    if head in _SUBCOMMANDS:
        return argv
    return ["run"] + argv


def _runs_json(runs: Sequence[CampaignRun]) -> str:
    docs = [{"scenario": r.scenario, "seed": r.seed,
             "spec_hash": r.spec_hash, "error": r.error,
             "report": r.report.to_dict() if r.report is not None else None}
            for r in runs]
    return json.dumps(docs, sort_keys=True, indent=2)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.resume and not args.store:
        print("error: --resume requires --store", file=sys.stderr)
        return 2
    specs: list = list(args.scenario)
    if args.trace is None:
        if args.time_scale != 1.0 or args.load_scale != 1.0:
            print("error: --time-scale/--load-scale require --trace",
                  file=sys.stderr)
            return 2
    else:
        try:
            replay = TraceReplayConfig(path=args.trace,
                                       time_scale=args.time_scale,
                                       load_scale=args.load_scale)
            specs = [scenarios.get(name).derive(name=f"{name}@trace",
                                                workload=replay)
                     for name in specs]
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    if args.strategy is not None:
        try:
            get_strategy(args.strategy)  # fail fast on typos
            specs = [(s if not isinstance(s, str) else scenarios.get(s))
                     .derive(strategy=args.strategy) for s in specs]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    store = None
    if args.store:
        if os.path.exists(args.store):
            store = _load_store(args.store)  # surface corrupt stores up front
            if store is None:
                return 2
        else:
            store = args.store  # fresh store: run_campaigns creates it
    total = len(specs) * len(args.seeds)
    done = [0]
    # Host-side progress timing: printed to stderr, never in a report.
    t0 = time.perf_counter()  # detlint: disable=DET002 — wall-clock UX only

    def progress(run: CampaignRun, cached: bool) -> None:
        done[0] += 1
        if args.quiet or args.json:
            return
        status = ("cached" if cached else
                  "ok" if run.ok else "FAILED")
        print(f"[{done[0]}/{total}] {run.scenario} @ seed {run.seed}: "
              f"{status} ({time.perf_counter() - t0:.1f}s)",  # detlint: disable=DET002
              file=sys.stderr)

    try:
        runs = run_campaigns(specs, seeds=args.seeds,
                             workers=args.workers, months=args.months,
                             store=store, resume=args.resume,
                             on_cell=progress,
                             cell_timeout_s=args.cell_timeout,
                             max_cell_attempts=args.cell_attempts)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(_runs_json(runs))
        return 0 if all(r.ok for r in runs) else 1
    for run in runs:
        if run.ok:
            print(run.report.summary())
        else:
            print(f"campaign {run.scenario} @ seed {run.seed} FAILED: "
                  f"{run.error_summary}")
        print()
    if len(runs) > 1:
        print("aggregate (mean ± 95% CI across seeds):")
        print(summarize_runs(runs))
    return 0 if all(r.ok for r in runs) else 1


def _load_store(path: str) -> Optional[CampaignStore]:
    if not os.path.exists(path):
        print(f"error: cannot load store {path!r}: no such file",
              file=sys.stderr)
        return None
    try:
        return CampaignStore(path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load store {path!r}: {exc}", file=sys.stderr)
        return None


def _cmd_report(args: argparse.Namespace) -> int:
    store = _load_store(args.store)
    if store is None:
        return 2
    runs = store.runs()
    if not runs:
        print("store is empty", file=sys.stderr)
        return 1
    if args.json:
        # raw names: machine consumers join on (scenario, spec_hash),
        # which must not shift when later appends add name variants
        print(_runs_json(store.runs(disambiguate=False)))
        return 0
    ok = [r for r in runs if r.ok]
    print(f"{args.store}: {len(runs)} cells "
          f"({len(ok)} ok, {len(runs) - len(ok)} failed), "
          f"{len(store.scenarios())} scenarios\n")
    try:
        print(summarize_runs(runs))
    except ValueError as exc:
        # store.runs() disambiguates name collisions, so this is a true
        # data inconsistency — report it without a traceback
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    store = _load_store(args.store)
    if store is None:
        return 2
    runs = [r for r in store.runs() if r.ok]
    try:
        deltas = compare_runs(runs, baseline=args.baseline)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if not deltas:
        print(f"store only holds the baseline scenario {args.baseline!r}; "
              "nothing to compare", file=sys.stderr)
        return 1
    print(format_comparison(deltas, baseline=args.baseline,
                            only_significant=args.significant))
    return 0


def _cmd_scoreboard(args: argparse.Namespace) -> int:
    """Race N scheduling strategies on one scenario and rank them."""
    if args.resume and not args.store:
        print("error: --resume requires --store", file=sys.stderr)
        return 2
    names = [s.strip() for s in args.strategies.split(",") if s.strip()]
    if not names:
        print("error: empty --strategies list", file=sys.stderr)
        return 2
    try:
        for name in names:
            get_strategy(name)  # fail fast on typos
        base = scenarios.get(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    # One variant per strategy; the +suffix keys the aggregate and store.
    specs = [base.derive(name=f"{base.name}+{name}", strategy=name)
             for name in names]
    store = None
    if args.store:
        if os.path.exists(args.store):
            store = _load_store(args.store)
            if store is None:
                return 2
        else:
            store = args.store
    total = len(specs) * len(args.seeds)
    done = [0]
    # Host-side progress timing: printed to stderr, never in a report.
    t0 = time.perf_counter()  # detlint: disable=DET002 — wall-clock UX only

    def progress(run: CampaignRun, cached: bool) -> None:
        done[0] += 1
        if args.quiet or args.json:
            return
        status = "cached" if cached else "ok" if run.ok else "FAILED"
        print(f"[{done[0]}/{total}] {run.scenario} @ seed {run.seed}: "
              f"{status} ({time.perf_counter() - t0:.1f}s)",  # detlint: disable=DET002
              file=sys.stderr)

    runs = run_campaigns(specs, seeds=args.seeds, workers=args.workers,
                         months=args.months, store=store,
                         resume=args.resume, on_cell=progress)
    failed = [r for r in runs if not r.ok]
    for run in failed:
        print(f"campaign {run.scenario} @ seed {run.seed} FAILED: "
              f"{run.error_summary}", file=sys.stderr)
    ok = [r for r in runs if r.ok]
    if not ok:
        return 1
    try:
        rows = scoreboard(aggregate_runs(ok), metric=args.metric,
                          ascending=not args.higher_better)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        docs = [{"rank": r.rank, "name": r.name,
                 "metric": args.metric,
                 "mean": r.summary.mean, "ci95": r.summary.ci95,
                 "n": r.summary.n,
                 "delta_vs_leader": r.delta_vs_leader,
                 "significant_vs_leader": r.significant_vs_leader,
                 "extras": {m: {"mean": s.mean, "ci95": s.ci95, "n": s.n}
                            for m, s in r.extras.items()}}
                for r in rows]
        print(json.dumps(docs, sort_keys=True, indent=2))
    else:
        print(format_scoreboard(rows, metric=args.metric))
    return 0 if not failed else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_cmd == "inspect":
        return _cmd_trace_inspect(args)
    if args.trace_cmd == "convert":
        return _cmd_trace_convert(args)
    if args.trace_cmd == "record":
        return _cmd_trace_record(args)
    print("error: trace needs a subcommand (inspect | convert | record)",
          file=sys.stderr)
    return 2


def _load_trace_cli(path: str):
    from .oar.traces import load_trace
    from .util.errors import ParseError
    try:
        return load_trace(path)
    except (OSError, ParseError, TypeError, ValueError) as exc:
        print(f"error: cannot load trace {path!r}: {exc}", file=sys.stderr)
        return None


def _cmd_trace_inspect(args: argparse.Namespace) -> int:
    trace = _load_trace_cli(args.trace)
    if trace is None:
        return 2
    stats = trace.stats()
    if args.json:
        print(json.dumps(stats, sort_keys=True, indent=2))
        return 0
    print(f"trace {trace.name or args.trace}: {stats['jobs']} jobs")
    if stats["jobs"]:
        day = 86_400.0
        print(f"  span: {stats['span_s'] / day:.2f} days "
              f"(mean inter-arrival {stats['mean_interarrival_s']:.0f}s)")
        print(f"  job size: {stats['nodes_min']}-{stats['nodes_max']} nodes "
              f"(mean {stats['nodes_mean']:.1f})")
        print(f"  demand: {stats['node_seconds'] / 3600.0:.0f} node-hours")
        clusters = ", ".join(stats["clusters"]) or "(none pinned)"
        print(f"  clusters: {clusters}")
        print(f"  users: {stats['users']}")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from .oar.traces import save_trace, trace_to_swf
    trace = _load_trace_cli(args.src)
    if trace is None:
        return 2
    if args.dst.endswith(".swf"):
        with open(args.dst, "w", encoding="utf-8") as fh:
            fh.write(trace_to_swf(trace))
    else:
        save_trace(trace, args.dst)
    print(f"wrote {len(trace)} jobs to {args.dst}", file=sys.stderr)
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .oar.traces import record_scenario, save_trace
    try:
        trace = record_scenario(args.scenario, seed=args.seed,
                                months=args.months)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    save_trace(trace, args.out)
    print(f"recorded {len(trace)} workload jobs from {args.scenario!r} "
          f"to {args.out}", file=sys.stderr)
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from .core.store import fsck_store
    if not os.path.exists(args.store):
        print(f"error: cannot fsck store {args.store!r}: no such file",
              file=sys.stderr)
        return 2
    try:
        report = fsck_store(args.store, repair=args.repair)
    except OSError as exc:
        print(f"error: cannot fsck store {args.store!r}: {exc}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_doc(), sort_keys=True, indent=2))
    else:
        print(f"{args.store}: {report}")
    if report.clean or report.repaired:
        return 0
    return 1  # damage found and left in place (run with --repair)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SimulatorService
    service = SimulatorService(host=args.host, port=args.port,
                               store=args.store)
    host, port = service.address
    store_msg = args.store if args.store else "in-memory (volatile)"
    print(f"repro-sim serving on {host}:{port} (store: {store_msg}); "
          "Ctrl-C to stop", file=sys.stderr)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        service.stop()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .service import ClientError, ReferenceClient
    try:
        with ReferenceClient(host=args.host, port=args.port) as client:
            result = client.run_scenario(args.scenario, seed=args.seed,
                                         months=args.months)
    except (OSError, ClientError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result["report"], sort_keys=True, indent=2))
    else:
        from .core.campaign import CampaignReport
        print(CampaignReport.from_dict(result["report"]).summary())
        print(f"  report sha256: {result['sha256']} "
              f"({result['ticks']} remote ticks)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # piping into `head`/`grep` closes stdout early; exit quietly
        # (redirect to devnull so the interpreter's final flush is silent)
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


def _main(argv: Optional[Sequence[str]]) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--list" in argv:
        # handled before parsing, like the pre-subcommand CLI did — so
        # `repro-campaign tiny-smoke --list` still just lists and exits
        for spec in scenarios.all_presets():
            print(f"{spec.name:<18} {spec.description}")
        return 0
    args = _build_parser().parse_args(_normalize_argv(argv))
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "scoreboard":
        return _cmd_scoreboard(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "run":
        return _cmd_run(args)
    _build_parser().print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
