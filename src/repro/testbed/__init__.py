"""Testbed substrate: resource descriptions, Reference API, topology.

Public entry point::

    from repro.testbed import build_grid5000, ReferenceApi, build_topology

    testbed = build_grid5000()           # 8 sites / 32 clusters / 894 nodes
    refapi = ReferenceApi(testbed)       # versioned description store
    topo = build_topology(testbed)       # networkx physical topology
"""

from .catalog import (
    CPU_MODELS,
    DISK_MODELS,
    GPU_MODELS,
    IB_MODELS,
    NIC_MODELS,
    CpuModel,
    DiskModel,
    GpuModel,
    IbModel,
    NicModel,
    cpu_for,
    disk_model,
    nic_model,
)
from .description import (
    BiosSettings,
    ClusterDescription,
    CpuSpec,
    DiskSpec,
    GpuSpec,
    InfinibandSpec,
    NicSpec,
    NodeDescription,
    PduPort,
    SiteDescription,
    TestbedDescription,
)
from .generator import CLUSTER_SPECS, SITE_NAMES, ClusterSpec, build_grid5000
from .refapi import RefApiVersion, ReferenceApi
from .topology import NetworkTopology, build_topology

__all__ = [
    "BiosSettings",
    "CpuSpec",
    "DiskSpec",
    "NicSpec",
    "InfinibandSpec",
    "GpuSpec",
    "PduPort",
    "NodeDescription",
    "ClusterDescription",
    "SiteDescription",
    "TestbedDescription",
    "CpuModel",
    "DiskModel",
    "NicModel",
    "IbModel",
    "GpuModel",
    "CPU_MODELS",
    "DISK_MODELS",
    "NIC_MODELS",
    "IB_MODELS",
    "GPU_MODELS",
    "cpu_for",
    "disk_model",
    "nic_model",
    "ClusterSpec",
    "CLUSTER_SPECS",
    "SITE_NAMES",
    "build_grid5000",
    "ReferenceApi",
    "RefApiVersion",
    "NetworkTopology",
    "build_topology",
]
