"""Tests for bug filing, deduplication, matching and the operator model."""

import pytest

from repro.checksuite import Finding, TestOutcome
from repro.core.bugtracker import BugStatus, BugTracker, OperatorTeam
from repro.faults import FaultContext, FaultInjector, FaultKind, ServiceHealth
from repro.nodes import MachinePark
from repro.testbed import CLUSTER_SPECS, build_grid5000
from repro.util import DAY, RngStreams, Simulator


@pytest.fixture()
def world():
    specs = [s for s in CLUSTER_SPECS if s.name in ("grisou", "grimoire")]
    testbed = build_grid5000(specs)
    sim = Simulator()
    rngs = RngStreams(seed=21)
    park = MachinePark.from_testbed(sim, testbed, rngs)
    ctx = FaultContext.build(park, ServiceHealth(), ("debian8-std",))
    injector = FaultInjector(sim, ctx, rngs)
    tracker = BugTracker(sim, injector.ground_truth, ctx)
    return sim, injector, tracker, ctx


def outcome_with(family, *findings):
    return TestOutcome(family=family, config={}, passed=False,
                       findings=list(findings))


def test_finding_matching_exact_target(world):
    sim, injector, tracker, _ = world
    inst = injector.inject(FaultKind.CONSOLE_BROKEN)
    bugs = tracker.file_from_outcome(outcome_with(
        "console", Finding(FaultKind.CONSOLE_BROKEN, inst.target, "dead")))
    assert len(bugs) == 1
    assert bugs[0].fault is inst
    assert inst.detected
    assert inst.detected_by == "console"


def test_finding_on_node_matches_cluster_fault(world):
    sim, injector, tracker, ctx = world
    inst = injector.inject(FaultKind.DISK_FIRMWARE_SKEW)
    node_uid = inst.details["nodes"][0]
    bugs = tracker.file_from_outcome(outcome_with(
        "disk", Finding(FaultKind.DISK_FIRMWARE_SKEW, node_uid, "old fw")))
    assert bugs[0].fault is inst


def test_finding_on_node_matches_site_fault(world):
    sim, injector, tracker, _ = world
    inst = injector.inject(FaultKind.KWAPI_DOWN)
    bugs = tracker.file_from_outcome(outcome_with(
        "kwapi", Finding(FaultKind.KWAPI_DOWN, inst.target, "no data")))
    assert bugs[0].fault is inst


def test_duplicate_filing_suppressed(world):
    sim, injector, tracker, _ = world
    inst = injector.inject(FaultKind.CPU_TURBO)
    finding = Finding(FaultKind.CPU_TURBO, inst.target, "turbo on")
    first = tracker.file_from_outcome(outcome_with("refapi", finding))
    second = tracker.file_from_outcome(outcome_with("stdenv", finding))
    assert len(first) == 1 and second == []
    assert tracker.filed_count == 1


def test_refiled_after_fix_if_fault_returns(world):
    sim, injector, tracker, ctx = world
    inst = injector.inject(FaultKind.CPU_TURBO)
    finding = Finding(FaultKind.CPU_TURBO, inst.target, "turbo on")
    (bug,) = tracker.file_from_outcome(outcome_with("refapi", finding))
    tracker.close(bug, BugStatus.FIXED)
    injector.fix(inst)
    # the same machine breaks again later: a *new* fault, a *new* bug
    inst2 = injector.inject(FaultKind.CPU_TURBO)
    finding2 = Finding(FaultKind.CPU_TURBO, inst2.target, "turbo on again")
    bugs = tracker.file_from_outcome(outcome_with("refapi", finding2))
    assert len(bugs) == 1
    assert tracker.filed_count == 2


def test_unexplained_finding_files_unexplained_bug(world):
    sim, injector, tracker, _ = world
    bugs = tracker.file_from_outcome(outcome_with(
        "oarstate", Finding(FaultKind.RANDOM_REBOOTS, "grisou-7", "suspected")))
    assert len(bugs) == 1
    assert bugs[0].fault is None
    assert not bugs[0].explained
    # dedup applies to unexplained bugs too
    again = tracker.file_from_outcome(outcome_with(
        "oarstate", Finding(FaultKind.RANDOM_REBOOTS, "grisou-7", "suspected")))
    assert again == []


def test_finding_without_hint_is_unexplained(world):
    sim, injector, tracker, _ = world
    injector.inject(FaultKind.DISK_WRITE_CACHE)
    bugs = tracker.file_from_outcome(outcome_with(
        "disk", Finding(None, "grisou-1", "slow, cause unknown")))
    assert bugs[0].fault is None


def test_statistics(world):
    sim, injector, tracker, _ = world
    a = injector.inject(FaultKind.CPU_CSTATES)
    tracker.file_from_outcome(outcome_with(
        "refapi", Finding(FaultKind.CPU_CSTATES, a.target, "x")))
    tracker.file_from_outcome(outcome_with(
        "oarstate", Finding(FaultKind.RANDOM_REBOOTS, "grisou-9", "y")))
    assert tracker.filed_count == 2
    assert tracker.open_count == 2
    assert tracker.unexplained_count == 1
    tracker.close(tracker.bugs[0], BugStatus.FIXED)
    assert tracker.fixed_count == 1
    assert tracker.open_count == 1


def test_operator_fixes_explained_bug(world):
    sim, injector, tracker, ctx = world
    operators = OperatorTeam(sim, tracker, injector, RngStreams(seed=5))
    inst = injector.inject(FaultKind.DISK_WRITE_CACHE)
    tracker.file_from_outcome(outcome_with(
        "disk", Finding(FaultKind.DISK_WRITE_CACHE, inst.target, "cache off")))
    sim.run(until=120 * DAY)
    (bug,) = tracker.bugs
    assert bug.status == BugStatus.FIXED
    assert not inst.active  # fault actually reverted
    assert inst.fixed_at is not None
    disk = ctx.machines[inst.target].find_disk(inst.details["device"])
    assert disk.write_cache


def test_operator_closes_unexplained_quickly(world):
    sim, injector, tracker, _ = world
    OperatorTeam(sim, tracker, injector, RngStreams(seed=5))
    tracker.file_from_outcome(outcome_with(
        "oarstate", Finding(FaultKind.RANDOM_REBOOTS, "grisou-3", "transient")))
    sim.run(until=30 * DAY)
    (bug,) = tracker.bugs
    assert bug.status == BugStatus.CLOSED_UNEXPLAINED


def test_operator_speedup_shortens_fixes(world):
    def median_fix(speedup, seed):
        specs = [s for s in CLUSTER_SPECS if s.name in ("grisou", "grimoire")]
        testbed = build_grid5000(specs)
        sim = Simulator()
        rngs = RngStreams(seed=seed)
        park = MachinePark.from_testbed(sim, testbed, rngs)
        ctx = FaultContext.build(park, ServiceHealth(), ("debian8-std",))
        injector = FaultInjector(sim, ctx, rngs)
        tracker = BugTracker(sim, injector.ground_truth, ctx)
        OperatorTeam(sim, tracker, injector, rngs, speedup=speedup)
        for _ in range(30):
            inst = injector.inject(FaultKind.CPU_CSTATES)
            if inst is None:
                break
            tracker.file_from_outcome(outcome_with(
                "refapi", Finding(FaultKind.CPU_CSTATES, inst.target, "c")))
        sim.run(until=400 * DAY)
        times = tracker.time_to_fix()
        return sum(times) / len(times)

    assert median_fix(4.0, 3) < median_fix(1.0, 3)


def test_time_to_fix_only_counts_fixed(world):
    sim, injector, tracker, _ = world
    assert tracker.time_to_fix() == []
