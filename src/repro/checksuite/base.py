"""Base machinery for the test-script families (slide 21).

Design follows the paper's stated philosophy — *"Keep It Simple, Stupid"*:
each family is a small class with a ``configurations`` list (its cells in
the coverage matrix) and a ``run`` generator that exercises the testbed
through exactly the interfaces a user would (OAR, Kadeploy, KaVLAN, the
monitoring API, ...) and reports *actionable findings*: "exhibit issues,
but also provide sufficient information to testbed operators to understand
and fix the issue".

A finding carries a root-cause hint (:class:`~repro.faults.FaultKind`) and
a target; the bug tracker later matches findings against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..checks.g5kchecks import run_g5k_checks
from ..faults.catalog import FaultKind
from ..faults.services import ServiceHealth
from ..kadeploy.deployment import Kadeploy
from ..kavlan.manager import KavlanManager
from ..monitoring.probes import Ganglia, Kwapi
from ..nodes.machine import MachinePark
from ..oar.database import OarDatabase
from ..oar.jobs import Job, JobState
from ..oar.server import OarServer
from ..testbed.description import TestbedDescription
from ..testbed.refapi import ReferenceApi
from ..testbed.topology import NetworkTopology
from ..util.events import Simulator
from ..util.rng import RngStreams

__all__ = ["Finding", "TestOutcome", "CheckContext", "CheckFamily"]


@dataclass(frozen=True)
class Finding:
    """One issue a test script reports."""

    kind_hint: Optional[FaultKind]
    target: str  # node uid, cluster, site or image@cluster
    message: str

    def __str__(self) -> str:
        hint = self.kind_hint.value if self.kind_hint else "unclassified"
        return f"[{hint}] {self.target}: {self.message}"


@dataclass
class TestOutcome:
    """Result of one test configuration run."""

    family: str
    config: dict[str, Any]
    passed: bool
    findings: list[Finding] = field(default_factory=list)
    #: True when the test could not obtain testbed resources at all
    #: (slide 17: the build is then marked UNSTABLE, not FAILURE).
    resources_blocked: bool = False
    log: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.log.append(message)


@dataclass
class CheckContext:
    """Everything a test script may touch (the user-visible testbed)."""

    sim: Simulator
    testbed: TestbedDescription
    refapi: ReferenceApi
    machines: MachinePark
    services: ServiceHealth
    oar: OarServer
    oardb: OarDatabase
    kadeploy: Kadeploy
    kavlan: KavlanManager
    kwapi: Kwapi
    ganglia: Ganglia
    topology: NetworkTopology
    rngs: RngStreams

    def rng(self, family: str):
        return self.rngs.stream(f"check-{family}")


class CheckFamily:
    """Base class for the sixteen test-script families."""

    #: slide-21 name, e.g. "environments".
    name: str = ""
    #: "software" tests take one node per cluster; "hardware" tests take
    #: all nodes of a cluster (slide 16) — the external scheduler uses this.
    kind: str = "software"
    #: Walltime requested for the testbed job, seconds.
    walltime_s: float = 1800.0
    #: Nodes the test reserves: 0 (out-of-band), an int, or "ALL" (whole
    #: cluster) -- the external scheduler checks availability against this.
    nodes_needed: object = 0

    def configurations(self, testbed: TestbedDescription) -> list[dict[str, Any]]:
        """The coverage cells of this family (slide-21 counts)."""
        raise NotImplementedError

    def run(self, ctx: CheckContext, config: dict[str, Any]):
        """Process generator returning a :class:`TestOutcome`."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------

    def _outcome(self, config: dict[str, Any]) -> TestOutcome:
        return TestOutcome(family=self.name, config=config, passed=True)

    def reserve(self, ctx: CheckContext, request: str):
        """Immediate-or-cancel reservation (the paper's contract).

        Returns the running job, or None when resources were not available
        right now — the caller reports ``resources_blocked``.
        """
        job = ctx.oar.submit(request, user="testframework",
                             immediate=True)
        if job.state == JobState.CANCELLED:
            return None
        yield job.started_event
        return job

    @staticmethod
    def release(ctx: CheckContext, job: Optional[Job]) -> None:
        if job is not None and job.state == JobState.RUNNING:
            ctx.oar.release(job)

    def g5k_checks_findings(self, ctx: CheckContext, node_uid: str) -> list[Finding]:
        """Run g5k-checks on one node, converting mismatches to findings."""
        report = run_g5k_checks(ctx.machines[node_uid], ctx.refapi, now=ctx.sim.now)
        return [
            Finding(kind_hint=m.kind_hint, target=node_uid, message=str(m))
            for m in report.mismatches
        ]
