"""Run tokens and replayable decision logs: the ``RESM`` machinery.

Every ``RUN`` is issued a token (``OK run <token>``) and, while it
executes, the session records each ``REDY``-committed tick as the ordered
list of ``(cell-id, action)`` decisions the client sent.  If the
connection dies mid-run, the record flips to ``disconnected`` and a
reconnecting client can send ``RESM <token>``: the server re-executes the
scenario from scratch — cheap, deterministic, and state-free — silently
replaying the recorded decision log until it reaches the tick where the
old connection died, then hands control back to the client for the rest.

Only *committed* ticks are replayed.  Decisions of a tick that never saw
its ``REDY`` died with the aborted simulation and are renegotiated — the
client is expected to be deterministic given identical ``JOBN`` data (the
reference client is), which is exactly the determinism contract the
protocol already imposes.

The registry is shared across a service's sessions and bounded: finished
and abandoned runs are evicted oldest-first once :data:`MAX_RECORDS` is
exceeded, so a long-lived server cannot leak decision logs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["RunRecord", "RunRegistry", "MAX_RECORDS"]

#: Registry size bound; evicting a live run is impossible (attached runs
#: are never evicted), so this only trims finished/abandoned histories.
MAX_RECORDS = 256


@dataclass
class RunRecord:
    """One issued run token and its replayable decision log."""

    token: str
    scenario: str
    seed: int
    months: Optional[float]
    #: running | disconnected | done | failed
    status: str = "running"
    #: One entry per committed tick: the ordered (cell-id, action)
    #: decisions of that tick ("SCHD" / "DEFR"); ticks with no due cells
    #: are elided by the strategy and therefore never appear here.
    ticks: list[list[tuple[str, str]]] = field(default_factory=list)
    #: True while a session is executing this run (attach guard).
    attached: bool = True
    #: Set once the run completes, so ``RPRT <token>`` can recover the
    #: report from a *fresh* connection (the old one may have died in
    #: the window between DONE and the report fetch).
    report: Optional[object] = None


class RunRegistry:
    """Thread-safe token → :class:`RunRecord` map with LRU-ish eviction."""

    def __init__(self, max_records: int = MAX_RECORDS):
        self._lock = threading.Lock()
        self._records: dict[str, RunRecord] = {}
        self._next = 1
        self.max_records = max_records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def create(self, scenario: str, seed: int,
               months: Optional[float]) -> RunRecord:
        with self._lock:
            token = f"run-{self._next}"
            self._next += 1
            record = RunRecord(token=token, scenario=scenario, seed=seed,
                               months=months)
            self._records[token] = record
            self._evict_locked()
            return record

    def get(self, token: str) -> Optional[RunRecord]:
        with self._lock:
            return self._records.get(token)

    def attach(self, token: str) -> RunRecord:
        """Claim a disconnected run for resumption.

        Raises ``KeyError`` for an unknown token and ``ValueError`` when
        the run is not resumable (still attached, finished, or failed).
        """
        with self._lock:
            record = self._records[token]  # KeyError -> ERR run
            if record.attached:
                raise ValueError(f"run {token} is still attached to a "
                                 "session (old connection not yet reaped)")
            if record.status != "disconnected":
                raise ValueError(f"run {token} already {record.status}; "
                                 "only disconnected runs resume")
            record.attached = True
            record.status = "running"
            return record

    def detach(self, record: RunRecord, status: str) -> None:
        """Release a run with its final (or resumable) status."""
        with self._lock:
            record.attached = False
            record.status = status

    def _evict_locked(self) -> None:
        if len(self._records) <= self.max_records:
            return
        # dicts preserve insertion order: drop the oldest evictable runs.
        for token, record in list(self._records.items()):
            if len(self._records) <= self.max_records:
                break
            if not record.attached:
                del self._records[token]
