"""Unit tests for named RNG streams."""

import numpy as np

from repro.util import RngStreams


def test_same_name_returns_cached_generator():
    rngs = RngStreams(seed=1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_reproducible_across_instances():
    a = RngStreams(seed=7).stream("faults").random(5)
    b = RngStreams(seed=7).stream("faults").random(5)
    assert np.allclose(a, b)


def test_different_names_are_independent():
    rngs = RngStreams(seed=7)
    a = rngs.stream("faults").random(5)
    b = rngs.stream("workload").random(5)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random(5)
    b = RngStreams(seed=2).stream("x").random(5)
    assert not np.allclose(a, b)


def test_stream_independent_of_request_order():
    r1 = RngStreams(seed=3)
    r1.stream("first")
    a = r1.stream("target").random(4)
    r2 = RngStreams(seed=3)
    b = r2.stream("target").random(4)  # requested first this time
    assert np.allclose(a, b)


def test_fork_reproducible_and_distinct_by_index():
    rngs = RngStreams(seed=5)
    a0 = rngs.fork("node", 0).random(4)
    a0_again = rngs.fork("node", 0).random(4)
    a1 = rngs.fork("node", 1).random(4)
    assert np.allclose(a0, a0_again)
    assert not np.allclose(a0, a1)


def test_fork_does_not_disturb_stream():
    r1 = RngStreams(seed=9)
    r1.fork("node", 3)
    a = r1.stream("s").random(3)
    r2 = RngStreams(seed=9)
    b = r2.stream("s").random(3)
    assert np.allclose(a, b)
