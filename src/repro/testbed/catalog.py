"""Hardware catalog: the vendor parts the synthetic testbed is built from.

Grid'5000 hardware spans a decade of purchases from different vendors
(slide 12: "hardware of different age, from different vendors"), which is
precisely why silent configuration drift happens.  The catalog lists CPU,
disk, NIC, Infiniband and GPU parts with realistic attributes; the testbed
generator picks from it per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CpuModel",
    "DiskModel",
    "NicModel",
    "IbModel",
    "GpuModel",
    "CPU_MODELS",
    "DISK_MODELS",
    "NIC_MODELS",
    "IB_MODELS",
    "GPU_MODELS",
    "cpu_for",
    "disk_model",
    "nic_model",
]


@dataclass(frozen=True)
class CpuModel:
    name: str
    vendor: str
    microarchitecture: str
    cores: int
    threads_per_core: int
    clock_ghz: float
    ht_capable: bool
    turbo_capable: bool


@dataclass(frozen=True)
class DiskModel:
    vendor: str
    model: str
    size_gb: int
    interface: str
    storage_type: str
    #: Known firmware versions, oldest first.  Nodes of one cluster should
    #: all run the *same* version; skew across nodes is a classic bug.
    firmware_versions: tuple[str, ...]

    @property
    def reference_firmware(self) -> str:
        """The version the Reference API documents (the newest one)."""
        return self.firmware_versions[-1]


@dataclass(frozen=True)
class NicModel:
    model: str
    driver: str
    rate_gbps: float


@dataclass(frozen=True)
class IbModel:
    model: str
    rate_gbps: int


@dataclass(frozen=True)
class GpuModel:
    model: str
    memory_gb: int


#: Keyed by name.  ``cores`` is per package.
CPU_MODELS: dict[str, CpuModel] = {
    m.name: m
    for m in [
        CpuModel("AMD Opteron 250", "amd", "K8", 1, 1, 2.4, False, False),
        CpuModel("AMD Opteron 285", "amd", "K8", 2, 1, 2.6, False, False),
        CpuModel("Intel Xeon X3440", "intel", "Nehalem", 4, 2, 2.53, True, True),
        CpuModel("Intel Xeon L5420", "intel", "Harpertown", 4, 1, 2.5, False, False),
        CpuModel("Intel Xeon E5420", "intel", "Harpertown", 4, 1, 2.5, False, False),
        CpuModel("Intel Xeon X5570", "intel", "Nehalem", 4, 2, 2.93, True, True),
        CpuModel("Intel Xeon E5520", "intel", "Nehalem", 4, 2, 2.27, True, True),
        CpuModel("Intel Xeon X5670", "intel", "Westmere", 6, 2, 2.93, True, True),
        CpuModel("Intel Xeon E5-2620", "intel", "Sandy Bridge", 6, 2, 2.0, True, True),
        CpuModel("Intel Xeon E5-2630 v3", "intel", "Haswell", 8, 2, 2.4, True, True),
        CpuModel("Intel Xeon E5-2630L v4", "intel", "Broadwell", 10, 2, 1.8, True, True),
        CpuModel("Intel Xeon E5-2660 v2", "intel", "Ivy Bridge", 10, 2, 2.2, True, True),
        CpuModel("Intel Xeon E5-2680 v4", "intel", "Broadwell", 14, 2, 2.4, True, True),
    ]
}

DISK_MODELS: tuple[DiskModel, ...] = (
    DiskModel("Seagate", "ST3250310NS", 250, "SATA", "HDD", ("SN04", "SN05", "SN06")),
    DiskModel("Western Digital", "WD2502ABYS", 250, "SATA", "HDD", ("02.03B02", "02.03B03")),
    DiskModel("Hitachi", "HUA722010CLA330", 1000, "SATA", "HDD", ("JP4OA25C", "JP4OA3EA")),
    DiskModel("Seagate", "ST9500620NS", 500, "SATA", "HDD", ("AA03", "AA09")),
    DiskModel("Toshiba", "MG03ACA100", 1000, "SATA", "HDD", ("FL1A", "FL1D")),
    DiskModel("Dell", "PERC H330 600GB SAS", 600, "SAS", "HDD", ("GA07", "GA09", "GA10")),
    DiskModel("Intel", "SSDSC2BB300G4", 300, "SATA", "SSD", ("D2010355", "D2010370")),
    DiskModel("Samsung", "SM863 480GB", 480, "SATA", "SSD", ("GXM1003Q", "GXM1103Q")),
)

NIC_MODELS: dict[str, NicModel] = {
    m.model: m
    for m in [
        NicModel("Broadcom NetXtreme BCM5720", "tg3", 1.0),
        NicModel("Intel 82576 Gigabit", "igb", 1.0),
        NicModel("Intel 82599ES 10-Gigabit", "ixgbe", 10.0),
        NicModel("Intel X710 10-Gigabit", "i40e", 10.0),
        NicModel("Broadcom BCM57810 10-Gigabit", "bnx2x", 10.0),
        NicModel("Intel X550 10-Gigabit", "ixgbe", 10.0),
    ]
}

IB_MODELS: dict[int, IbModel] = {
    20: IbModel("Mellanox MT25418 ConnectX DDR", 20),
    40: IbModel("Mellanox MT26428 ConnectX-2 QDR", 40),
    56: IbModel("Mellanox MT27500 ConnectX-3 FDR", 56),
}

GPU_MODELS: dict[str, GpuModel] = {
    m.model: m
    for m in [
        GpuModel("NVIDIA Tesla S1070", 4),
        GpuModel("NVIDIA Tesla M2075", 6),
        GpuModel("NVIDIA GTX 1080 Ti", 11),
    ]
}


def cpu_for(name: str) -> CpuModel:
    """Catalog lookup with a helpful error."""
    try:
        return CPU_MODELS[name]
    except KeyError:
        raise KeyError(f"unknown CPU model: {name!r}") from None


def disk_model(model: str) -> DiskModel:
    for d in DISK_MODELS:
        if d.model == model:
            return d
    raise KeyError(f"unknown disk model: {model!r}")


def nic_model(model: str) -> NicModel:
    try:
        return NIC_MODELS[model]
    except KeyError:
        raise KeyError(f"unknown NIC model: {model!r}") from None
