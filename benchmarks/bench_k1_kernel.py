"""K1 — event-kernel throughput: the per-event overhead ceiling.

Everything in the reproduction (OAR, Kadeploy, the CI server, the fault
injector, the probes) is a process on the hand-rolled event kernel, so its
per-event cost bounds campaign throughput.  Two workloads:

* **micro** — raw callback churn: self-rescheduling ``call_in`` chains,
  measuring heap push/pop + dispatch with no process machinery;
* **macro** — timeout-heavy process churn: generator processes doing
  ``yield sim.timeout(d)`` in a loop — the dominant pattern across the
  whole codebase, and the one the kernel fast path targets;
* **watchdog** — the any_of(work, timeout) + cancel pattern the CI server
  uses: measures that abandoned watchdog timers are lazily cancelled
  instead of living in the heap until they fire.

Numbers land in ``benchmarks/results/BENCH_k1_kernel.json`` next to the
frozen pre-fast-path throughput measured on the same machine immediately
before the kernel overhaul, so the speedup is recorded alongside the
current reading.  The CI perf-smoke job compares a fresh run against the
committed JSON via ``benchmarks/perf.py`` (30 % tolerance).
"""

import time

from repro.util.events import Simulator

from conftest import paper_row, print_table
from perf import write_results

#: Throughput of the pre-PR kernel (same machine, same workloads, median
#: of 3), measured right before the timeout fast path landed.  The
#: acceptance bar for the overhaul was >= 2x on the macro number.
_PRE_PR = {
    "callback_events_per_s": 1_074_947.0,
    "timeout_events_per_s": 352_639.0,
}


def _bench_callbacks(chains: int = 64, hops: int = 4000) -> float:
    """Micro: heap + dispatch cost of bare rescheduling callbacks."""
    sim = Simulator()
    remaining = [hops] * chains

    def tick(i: int) -> None:
        remaining[i] -= 1
        if remaining[i]:
            sim.call_in(1.0, tick, i)

    for i in range(chains):
        sim.call_in(1.0, tick, i)
    t0 = time.perf_counter()
    sim.run()
    return chains * hops / (time.perf_counter() - t0)


def _bench_timeouts(procs: int = 256, rounds: int = 1000) -> float:
    """Macro: the dominant ``yield sim.timeout(delay)`` pattern."""
    sim = Simulator()

    def churn(delay: float):
        for _ in range(rounds):
            yield sim.timeout(delay)

    for i in range(procs):
        sim.process(churn(float((i % 7) + 1) * 0.5))
    t0 = time.perf_counter()
    sim.run()
    return procs * rounds / (time.perf_counter() - t0)


def _bench_watchdogs(rounds: int = 20_000) -> tuple[float, int]:
    """CI-server shape: fast work raced against a long watchdog timeout
    that is cancelled once the work wins.  Returns (events/s, peak heap
    size) — with lazy cancellation the heap stays flat instead of
    accumulating one dead hour-long timer per round."""
    sim = Simulator()
    peak = 0

    def loop():
        nonlocal peak
        for _ in range(rounds):
            work = sim.timeout(1.0, "done")
            watchdog = sim.timeout(3600.0, "timeout")
            yield sim.any_of([work, watchdog])
            watchdog.cancel()
            peak = max(peak, len(sim._heap))

    sim.process(loop())
    t0 = time.perf_counter()
    sim.run()
    return rounds / (time.perf_counter() - t0), peak


def bench_k1_kernel(benchmark):
    callback_eps = benchmark.pedantic(_bench_callbacks, rounds=1, iterations=1)
    timeout_eps = _bench_timeouts()
    watchdog_rps, watchdog_peak_heap = _bench_watchdogs()

    speedup = timeout_eps / _PRE_PR["timeout_events_per_s"]
    rows = [
        paper_row("micro: callback events/s", "-", f"{callback_eps:,.0f}"),
        paper_row("macro: timeout yields/s", "-", f"{timeout_eps:,.0f}"),
        paper_row("macro speedup vs pre-PR kernel", ">= 2x",
                  f"{speedup:.2f}x"),
        paper_row("watchdog rounds/s (any_of + cancel)", "-",
                  f"{watchdog_rps:,.0f}"),
        paper_row("watchdog peak heap entries", "flat (< 64)",
                  watchdog_peak_heap),
    ]
    print_table("K1: event-kernel throughput", rows)

    write_results("k1_kernel", {
        "callback_events_per_s": round(callback_eps, 1),
        "timeout_events_per_s": round(timeout_eps, 1),
        "watchdog_rounds_per_s": round(watchdog_rps, 1),
        "watchdog_peak_heap": watchdog_peak_heap,
        "pre_pr_callback_events_per_s": _PRE_PR["callback_events_per_s"],
        "pre_pr_timeout_events_per_s": _PRE_PR["timeout_events_per_s"],
        "timeout_speedup_vs_pre_pr": round(speedup, 2),
    })

    # Absolute floors are deliberately far below any real machine — the
    # committed-baseline comparison in CI (perf.py, 30 % tolerance) is the
    # actual regression gate; these only catch a complexity-class slip.
    assert callback_eps > 100_000
    assert timeout_eps > 50_000
    # Lazy cancellation: dead watchdogs must not pile up in the heap.
    assert watchdog_peak_heap < 64
