"""Time-series storage for monitoring probes.

Slide 9: infrastructure probes (network, power) are "captured at high
frequency (≈1 Hz)" with live visualization, a REST API and long-term
storage.  :class:`MetricStore` keeps one fixed-capacity numpy ring buffer
per series — O(1) appends, vectorized window queries, bounded memory even
on month-long campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import MonitoringError

__all__ = ["SeriesStats", "RingBuffer", "MetricStore"]


@dataclass(frozen=True)
class SeriesStats:
    count: int
    mean: float
    minimum: float
    maximum: float


class RingBuffer:
    """Fixed-capacity (timestamp, value) ring."""

    __slots__ = ("_t", "_v", "_capacity", "_size", "_head")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise MonitoringError("ring capacity must be >= 1")
        self._capacity = capacity
        self._t = np.empty(capacity, dtype=np.float64)
        self._v = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._head = 0  # next write slot

    def __len__(self) -> int:
        return self._size

    def append(self, t: float, value: float) -> None:
        self._t[self._head] = t
        self._v[self._head] = value
        self._head = (self._head + 1) % self._capacity
        self._size = min(self._size + 1, self._capacity)

    def _ordered(self) -> tuple[np.ndarray, np.ndarray]:
        if self._size < self._capacity:
            return self._t[: self._size], self._v[: self._size]
        idx = np.concatenate([np.arange(self._head, self._capacity),
                              np.arange(0, self._head)])
        return self._t[idx], self._v[idx]

    def last(self) -> tuple[float, float]:
        if self._size == 0:
            raise MonitoringError("empty series")
        idx = (self._head - 1) % self._capacity
        return float(self._t[idx]), float(self._v[idx])

    def window(self, t_from: float, t_to: float) -> tuple[np.ndarray, np.ndarray]:
        """All samples with ``t_from <= t < t_to`` (chronological)."""
        t, v = self._ordered()
        mask = (t >= t_from) & (t < t_to)
        return t[mask], v[mask]


class MetricStore:
    """Named series, each a ring buffer."""

    def __init__(self, capacity_per_series: int = 4096):
        self._capacity = capacity_per_series
        self._series: dict[str, RingBuffer] = {}

    def series(self, name: str) -> RingBuffer:
        """The named ring, created empty on first use.

        Hot-path accessor: probes hold the returned reference and append
        directly, skipping the per-sample name lookup ``record`` pays.
        """
        ring = self._series.get(name)
        if ring is None:
            ring = RingBuffer(self._capacity)
            self._series[name] = ring
        return ring

    def record(self, series: str, t: float, value: float) -> None:
        self.series(series).append(t, value)

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def has_series(self, series: str) -> bool:
        return series in self._series

    def _ring(self, series: str) -> RingBuffer:
        try:
            return self._series[series]
        except KeyError:
            raise MonitoringError(f"unknown series: {series}") from None

    def last(self, series: str) -> tuple[float, float]:
        return self._ring(series).last()

    def window(self, series: str, t_from: float, t_to: float):
        return self._ring(series).window(t_from, t_to)

    def stats(self, series: str, t_from: float, t_to: float) -> SeriesStats:
        _, values = self.window(series, t_from, t_to)
        if values.size == 0:
            return SeriesStats(0, float("nan"), float("nan"), float("nan"))
        return SeriesStats(
            count=int(values.size),
            mean=float(values.mean()),
            minimum=float(values.min()),
            maximum=float(values.max()),
        )
