"""Minimal deterministic discrete-event simulation kernel.

This is the substrate everything in :mod:`repro` runs on: the OAR batch
scheduler, Kadeploy deployments, the Jenkins-shaped CI server, the external
test scheduler and the fault injector are all processes driven by one
:class:`Simulator`.

The design follows the classic event-heap + generator-process model (a small
subset of SimPy, reimplemented here because the environment is offline):

* :class:`Simulator` owns a heap of ``(time, sequence, callback)`` entries
  plus a FIFO *instant queue* for zero-delay entries at the current time.
  The sequence number makes execution order fully deterministic for equal
  timestamps (insertion order), which matters for reproducible campaigns;
  splitting the current instant into a deque keeps the hottest scheduling
  operation (trigger callbacks, process resumes) O(1) instead of paying
  two heap operations per event.
* :class:`Event` is a one-shot occurrence that callbacks and processes can
  wait on.
* :class:`Process` wraps a generator; the generator ``yield``\\ s events
  (typically :meth:`Simulator.timeout`) and is resumed when they trigger.
  A process is itself an event that triggers when the generator returns,
  so processes can join each other.
* ``yield sim.timeout(delay)`` — by far the dominant pattern — takes a
  **fast path**: the kernel notes the waiting process on the timeout
  itself and resumes the generator straight from the heap entry, with no
  callback list, no closure and no intermediate event hop.  The resume is
  re-enqueued at the (time, seq) slot the generic hop would have used, so
  execution order is byte-for-byte identical to the slow path.
* Pending timeouts can be **lazily cancelled** (:meth:`Timeout.cancel`,
  and automatically when a fast-waiting process is interrupted): the heap
  entry is marked dead and skipped at pop time, so hour-long watchdogs
  abandoned after seconds do not pile up as dead work.
* :class:`AnyOf` / :class:`AllOf` combine events.
* :class:`Resource` is a capacity-limited FIFO resource (used e.g. for
  Jenkins executors).

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(proc(sim, "a", 2.0))
>>> _ = sim.process(proc(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import SimulationError

_heappush = heapq.heappush

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Resource",
    "Simulator",
]


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    ``cause`` carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` triggers it
    exactly once, delivering ``value`` to every registered callback.

    ``callbacks`` is allocated lazily: most events in a simulation get at
    most one waiter, and timeouts on the process fast path get none.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "value", "_is_error")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._triggered = False
        self.value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        """True once the event has occurred (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._triggered and not self._is_error

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to waiters."""
        self._trigger(value, is_error=False)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as a failure; waiters receive the exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() needs an exception instance")
        self._trigger(exception, is_error=True)
        return self

    def _trigger(self, value: Any, is_error: bool) -> None:
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self.value = value
        self._is_error = is_error
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            schedule = self.sim._schedule_call
            for cb in callbacks:
                schedule(0.0, cb, self)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if past)."""
        if self._triggered:
            self.sim._schedule_call(0.0, fn, self)
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)


def _fire_timeout(timeout: "Timeout", value: Any) -> None:
    """Heap-entry dispatch target for timeouts.

    A module-level function so scheduling a timeout does not allocate a
    bound method per push (this runs once per ``yield sim.timeout(...)``,
    the hottest allocation site in the simulator).
    """
    proc = timeout._proc
    if proc is None:
        if timeout._dead:
            return  # cancelled instant timeout (no heap entry to skip)
        timeout.succeed(value)
        return
    # Fast path: resume the waiting generator straight from the heap
    # entry, re-enqueued at the (time, seq) slot the generic callback hop
    # would have consumed — order identical, machinery skipped.
    timeout._proc = None
    timeout._heap_seq = None
    timeout._triggered = True
    timeout.value = value
    sim = timeout.sim
    seq = sim._seq = sim._seq + 1
    sim._queue.append((seq, proc._bound_resume,
                       (timeout._ptoken, value, None)))


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    When the timeout is yielded by exactly one process (the dominant
    pattern) the kernel registers the process *directly* on the timeout
    (``_proc``/``_ptoken``) instead of going through the callback
    machinery; :func:`_fire_timeout` then re-enqueues the generator resume
    at the very (time, seq) slot the generic callback hop would have
    consumed, keeping execution order identical while skipping one
    closure, one callback list and two function frames per yield.
    """

    __slots__ = ("delay", "_proc", "_ptoken", "_heap_seq", "_dead")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + scheduling: this runs once per yield in
        # every hot loop of the simulation.
        self.sim = sim
        self.callbacks = None
        self._triggered = False
        self.value = None
        self._is_error = False
        self.delay = delay
        self._proc: Optional["Process"] = None
        self._ptoken = 0
        self._dead = False
        seq = sim._seq = sim._seq + 1
        if delay:
            _heappush(sim._heap, (sim._now + delay, seq, _fire_timeout,
                                  (self, value)))
            self._heap_seq: Optional[int] = seq
        else:
            sim._queue.append((seq, _fire_timeout, (self, value)))
            self._heap_seq = None  # instant entries cannot be cancelled

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._dead:
            # Registering on a cancelled timeout would strand the waiter
            # forever (the fire entry is gone); fail loudly instead.
            raise SimulationError("cannot wait on a cancelled timeout")
        if self._proc is not None:
            # A second waiter appeared after a process fast-registered:
            # demote the fast registration to the generic callback path,
            # preserving registration order.
            proc, token = self._proc, self._ptoken
            self._proc = None
            proc._waiting_on = self
            super().add_callback(lambda ev: proc._on_wait_done(token, ev))
        super().add_callback(fn)

    def cancel(self) -> None:
        """Lazily cancel a pending timeout: its fire is marked dead (and
        any heap entry skipped at pop time), so an abandoned long watchdog
        costs one set entry instead of living in the heap until it fires.

        Only for a timeout nothing depends on any more — e.g. the losing
        branch of an ``any_of`` race, whose already-settled combinator
        callback would have been a no-op anyway; any callbacks still
        registered at cancel time simply never run.  Cancelling a timeout
        a process is fast-waiting on would strand the process, so that is
        a loud error (as is any *later* attempt to wait on a cancelled
        timeout); cancelling an already-fired (or already-cancelled)
        timeout is a no-op.
        """
        if self._proc is not None:
            raise SimulationError(
                "cannot cancel a timeout a process is waiting on "
                "(interrupt the process instead)")
        if not self._triggered and not self._dead:
            self._dead = True
            if self._heap_seq is not None:
                self.sim._cancel_entry(self._heap_seq)
                self._heap_seq = None


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    ``value`` is a dict mapping the already-successful events to their
    values at the instant of first trigger.  A child that *fails* first
    fails the combinator with its exception — burying the failure inside
    the value dict would silently swallow it, since waiters only get
    exceptions thrown into them via :meth:`Event.fail`.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self.succeed({e: e.value for e in self.events if e.triggered and e.ok})


class AllOf(Event):
    """Triggers when all of ``events`` have triggered.

    ``value`` is a dict mapping each event to its value.  The first child
    failure fails the combinator immediately (the exception propagates to
    waiters instead of hiding in the value dict); later child triggers are
    then ignored.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            raise SimulationError("AllOf needs at least one event")
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})


class Process(Event):
    """A running generator-based process.

    The wrapped generator yields :class:`Event` instances and is resumed
    with the event's value when it triggers (or has the event's exception
    thrown into it if the event failed).  The process is itself an event
    that succeeds with the generator's return value.
    """

    __slots__ = ("gen", "name", "_wait_token", "_alive", "_waiting_on",
                 "_bound_resume")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._wait_token = 0
        self._alive = True
        self._waiting_on: Optional[Event] = None
        #: Bound once: every fast-path resume reuses this instead of
        #: allocating a fresh bound method per yield.
        self._bound_resume = self._resume
        sim._schedule_call(0.0, self._bound_resume, self._wait_token, None, None)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a silent no-op; interrupting a
        waiting process cancels the wait (the awaited event's later trigger
        is ignored by this process, and a fast-path timeout wait has its
        heap entry lazily cancelled so no dead work remains).
        """
        if not self._alive:
            return
        self._wait_token += 1  # invalidate any pending wait resume
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and type(target) is Timeout \
                and target._proc is self:
            # The wait is over: retire the timeout entirely.  Marking it
            # dead (not just skipping its heap entry) makes any later
            # attempt to wait on it a loud error instead of a silent
            # never-resume.
            target._proc = None
            target._dead = True
            if target._heap_seq is not None:
                self.sim._cancel_entry(target._heap_seq)
                target._heap_seq = None
        self.sim._schedule_call(
            0.0, self._resume, self._wait_token, None, Interrupt(cause)
        )

    # -- internal machinery -------------------------------------------------

    def _resume(self, token: int, value: Any, exc: Optional[BaseException]) -> None:
        if token != self._wait_token or not self._alive:
            return  # stale wake-up (process was interrupted meanwhile)
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except Interrupt:
            # Generator chose not to handle the interrupt: treat as death.
            self._alive = False
            self.succeed(None)
            return
        if type(target) is Timeout and target._proc is None \
                and not target._triggered and target.callbacks is None \
                and not target._dead:
            # Fast path: the pristine-timeout wait needs no callback — the
            # timeout resumes this generator straight from its heap entry.
            self._wait_token += 1
            target._proc = self
            target._ptoken = self._wait_token
            self._waiting_on = target
            return
        if not isinstance(target, Event):
            self._alive = False
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self.fail(err)
            raise err
        self._wait_token += 1
        token = self._wait_token
        self._waiting_on = target
        target.add_callback(lambda ev: self._on_wait_done(token, ev))

    def _on_wait_done(self, token: int, ev: Event) -> None:
        if ev.ok:
            self._resume(token, ev.value, None)
        else:
            self._resume(token, None, ev.value)


class Resource:
    """A capacity-limited FIFO resource.

    ``request()`` returns an event that succeeds once a slot is available;
    the holder must call ``release(request)`` exactly once.  The request
    event is the grant token: the resource tracks exactly which requests
    hold slots, so double releases are a loud error and :meth:`cancel` is
    safe to call regardless of whether the holder already released.
    """

    __slots__ = ("sim", "capacity", "in_use", "_waiters", "_granted")

    def __init__(self, sim: "Simulator", capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()
        self._granted: set[Event] = set()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            self._granted.add(ev)
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self, request_event: Event) -> None:
        """Give the slot of ``request_event`` back (or hand it straight to
        the next waiter).

        The release is checked against grant state: releasing a request
        that holds no slot (double release, a still-queued request, or a
        request that was cancelled) raises instead of corrupting the
        capacity accounting.
        """
        if request_event not in self._granted:
            raise SimulationError(
                "release() of a request that holds no slot "
                "(double release or cancelled request?)")
        self._granted.discard(request_event)
        if self._waiters:
            ev = self._waiters.popleft()
            self._granted.add(ev)
            ev.succeed(self)  # slot handed over directly
        else:
            self.in_use -= 1

    def cancel(self, request_event: Event) -> None:
        """Withdraw a request: un-queue it, or release the slot if it was
        granted and not yet released.  Idempotent — cancelling a request
        whose holder already released (or cancelling twice) is a no-op
        rather than a phantom release that would inflate capacity."""
        if request_event in self._waiters:
            self._waiters.remove(request_event)
        elif request_event in self._granted:
            self.release(request_event)


class Simulator:
    """Deterministic discrete-event simulator.

    Scheduling state is a binary heap for future entries plus a FIFO
    *instant queue* for zero-delay entries.  Both share one monotonically
    increasing sequence counter, so the execution order is exactly "by
    (time, seq)" — identical to a single heap, but the (very hot)
    zero-delay case costs two deque operations instead of two ``log n``
    heap operations.  The invariant making the split sound: instant
    entries are enqueued *at* the current time, and every heap entry at
    the current time was pushed strictly earlier (a zero delay never
    reaches the heap), so all current-time heap entries carry smaller
    sequence numbers than anything in the queue and simply drain first.

    Parameters
    ----------
    start:
        Initial simulated time, in seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._queue: deque[tuple[int, Callable, tuple]] = deque()
        self._seq = 0
        #: Sequence numbers of lazily-cancelled heap entries (skipped at
        #: pop time); see :meth:`Timeout.cancel`.
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling primitives ----------------------------------------------

    def _schedule_call(self, delay: float, fn: Callable, *args: Any) -> None:
        self._seq += 1
        if delay:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past (delay={delay})")
            heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))
        else:
            self._queue.append((self._seq, fn, args))

    def _cancel_entry(self, seq: int) -> None:
        """Mark one heap entry dead; compact once dead entries dominate.

        Compaction keeps abandoned watchdogs from occupying the heap until
        their (possibly far-future) fire time.  It only removes entries
        that would have been skipped anyway, and pop order is the total
        order (time, seq), so the schedule is unchanged.
        """
        cancelled = self._cancelled
        cancelled.add(seq)
        heap = self._heap
        if len(cancelled) >= 32 and 2 * len(cancelled) >= len(heap):
            # In place: the run() hot loop holds a reference to this list.
            heap[:] = [e for e in heap if e[1] not in cancelled]
            heapq.heapify(heap)
            cancelled.clear()

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Invoke ``fn(*args)`` at absolute simulated time ``when``."""
        self._schedule_call(when - self._now, fn, *args)

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Invoke ``fn(*args)`` after ``delay`` simulated seconds."""
        self._schedule_call(delay, fn, *args)

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if none left.

        Lazily-cancelled entries are discarded in passing — they never
        count as a step, run nothing and leave the clock untouched (the
        clock only advances to times at which something actually runs).
        """
        queue = self._queue
        heap = self._heap
        cancelled = self._cancelled
        while True:
            if queue and not (heap and heap[0][0] <= self._now):
                _seq, fn, args = queue.popleft()
                fn(*args)
                return True
            if not heap:
                return False
            when, seq, fn, args = heapq.heappop(heap)
            if when < self._now:
                raise SimulationError(
                    "event heap corrupted: time went backwards")
            if cancelled and seq in cancelled:
                cancelled.discard(seq)  # dead entry: skip without running
                continue
            self._now = when
            fn(*args)
            return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the schedule drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.  When
        ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fired earlier.
        """
        # The hottest loop in the codebase: the heap/queue pop-and-dispatch
        # is inlined here (one step() call per event costs ~15 % throughput)
        # and structured around the instant-queue invariant: dispatching
        # can only append *future* heap entries or *current-instant* queue
        # entries, and every heap entry at the current instant predates
        # (seq-wise) everything in the queue.  Each phase below is
        # therefore a tight drain with no cross-checks per event.
        heap = self._heap
        queue = self._queue
        cancelled = self._cancelled
        heappop = heapq.heappop
        popleft = queue.popleft
        if until is None:
            while True:
                now = self._now  # constant until the advance step below
                while heap and heap[0][0] <= now:
                    _when, seq, fn, args = heappop(heap)
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    fn(*args)
                while queue:
                    _seq, fn, args = popleft()
                    fn(*args)
                if not heap:
                    return self._now
                when, seq, fn, args = heappop(heap)  # advance the clock
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)  # dead: skip, clock untouched
                    continue
                self._now = when
                fn(*args)
        if until < self._now:
            raise SimulationError(f"run(until={until}) is in the past ({self._now})")
        while True:
            now = self._now  # constant until the advance step below
            while heap and heap[0][0] <= now:
                _when, seq, fn, args = heappop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                fn(*args)
            while queue:
                _seq, fn, args = popleft()
                fn(*args)
            if not heap or heap[0][0] > until:
                self._now = until
                return self._now
            when, seq, fn, args = heappop(heap)  # advance the clock
            if cancelled and seq in cancelled:
                cancelled.discard(seq)  # dead: skip, clock untouched
                continue
            self._now = when
            fn(*args)

    def peek(self) -> float:
        """Time of the next scheduled callback, or ``inf`` if none."""
        if self._queue:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")
