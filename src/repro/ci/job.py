"""Jenkins job and build objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..util.events import Event

__all__ = ["BuildStatus", "Build", "JobDefinition"]


class BuildStatus(enum.Enum):
    SUCCESS = "SUCCESS"
    #: The paper's convention: a build whose testbed job could not be
    #: scheduled immediately is cancelled and marked UNSTABLE (slide 17).
    UNSTABLE = "UNSTABLE"
    FAILURE = "FAILURE"
    ABORTED = "ABORTED"

    @property
    def is_success(self) -> bool:
        return self is BuildStatus.SUCCESS


@dataclass(eq=False)
class Build:
    """One execution of a job with concrete parameters."""

    number: int
    job_name: str
    parameters: dict[str, Any]
    cause: str
    queued_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    status: Optional[BuildStatus] = None  # None while queued/running
    log: list[str] = field(default_factory=list)
    #: Triggered when the build completes (value: the build).
    done_event: Optional[Event] = None

    @property
    def running(self) -> bool:
        return self.started_at is not None and self.finished_at is None

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def duration_s(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def wait_time_s(self) -> Optional[float]:
        return None if self.started_at is None else self.started_at - self.queued_at

    def log_line(self, now: float, message: str) -> None:
        self.log.append(f"[{now:12.1f}] {message}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = self.status.value if self.status else "PENDING"
        return f"<Build {self.job_name}#{self.number} {self.parameters} {status}>"


#: A job runner is a generator function: ``runner(build)`` yields simulation
#: events and returns the final :class:`BuildStatus`.
Runner = Callable[[Build], Any]


@dataclass(eq=False)
class JobDefinition:
    """A registered Jenkins job."""

    name: str
    runner: Runner
    description: str = ""
    #: Upper bound on build runtime; exceeded -> ABORTED (Jenkins timeout).
    timeout_s: float = 4 * 3600.0
    builds: list[Build] = field(default_factory=list)

    @property
    def next_build_number(self) -> int:
        return len(self.builds) + 1

    def last_build(self, parameters: Optional[dict[str, Any]] = None) -> Optional[Build]:
        """Most recent finished build (optionally for exact parameters)."""
        for build in reversed(self.builds):
            if not build.finished:
                continue
            if parameters is None or build.parameters == parameters:
                return build
        return None
