"""Policies of the external test scheduler (slide 17).

The external tool "queries the job status and the testbed status, and
decides to submit a job based on: resources availability, retry policy
(exponential backoff), additional policies (peak hours, avoid several jobs
on same site)".  Each policy here is one of those clauses.

Two layers live here:

* :class:`SchedulerPolicy` — the declarative *knobs* (cadences, backoff
  shape, peak-hour avoidance).  Frozen data, part of
  :class:`~repro.scenarios.ScenarioSpec`, JSON-serializable.
* :class:`SchedulingStrategy` — the *decision procedure* that consumes
  those knobs at every scheduler tick.  A strategy sees the due test
  cells through a tick view and calls ``launch``/``defer`` on it;
  :class:`DefaultStrategy` reproduces the paper's availability-aware
  logic, and alternative strategies (a remote client speaking the wire
  protocol, future malleable policies) register under a name in
  :data:`the strategy registry <register_strategy>` and plug into
  :class:`~repro.scheduling.launcher.ExternalScheduler` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Type

from ..util.simclock import DAY, HOUR, is_peak_hours

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (launcher uses us)
    from ..ci.job import Build
    from .launcher import TestCell, TickView

__all__ = ["SchedulerPolicy", "Backoff", "SchedulingStrategy",
           "DefaultStrategy", "register_strategy", "get_strategy",
           "strategy_names"]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Tunable knobs (the A3 ablation bench sweeps these)."""

    #: Re-run cadence of a cell after a completed build.  With 751 cells
    #: (448 of them deployments) these cadences keep the framework's own
    #: load at a few hundred builds per day, like the real instance.
    software_period_s: float = 3 * DAY
    hardware_period_s: float = 7 * DAY
    #: Exponential backoff after a blocked/unstable attempt.
    backoff_initial_s: float = 1 * HOUR
    backoff_factor: float = 2.0
    backoff_max_s: float = 4 * DAY
    #: Keep resource-hungry tests out of users' peak hours.
    avoid_peak_hours_for_hardware: bool = True
    #: At most this many framework builds in flight per site.
    max_concurrent_per_site: int = 1
    #: Check resources availability before triggering (skipping this is the
    #: naive baseline that wastes Jenkins workers — slide 16).
    check_resources_first: bool = True

    def allows_now(self, kind: str, t: float) -> bool:
        if kind == "hardware" and self.avoid_peak_hours_for_hardware:
            return not is_peak_hours(t)
        return True


class Backoff:
    """Exponential backoff state for one test cell."""

    __slots__ = ("_policy", "_current_s", "attempts")

    def __init__(self, policy: SchedulerPolicy):
        self._policy = policy
        self._current_s = policy.backoff_initial_s
        self.attempts = 0

    @property
    def current_s(self) -> float:
        return self._current_s

    def next_delay(self) -> float:
        """Delay to wait after a failed attempt; grows exponentially."""
        delay = self._current_s
        self.attempts += 1
        self._current_s = min(self._current_s * self._policy.backoff_factor,
                              self._policy.backoff_max_s)
        return delay

    def reset(self) -> None:
        self._current_s = self._policy.backoff_initial_s
        self.attempts = 0


# -- strategy layer ------------------------------------------------------------


class SchedulingStrategy:
    """Decision procedure the external scheduler delegates each tick to.

    A strategy never touches the scheduler directly: it works against a
    :class:`~repro.scheduling.launcher.TickView`, reading the due cells
    and testbed availability and calling ``view.launch(cell)`` /
    ``view.defer(cell)``.  Decisions are applied immediately, in call
    order — that order is part of the deterministic execution trace, so
    two strategies making the same calls in the same order produce
    byte-identical campaigns.

    ``on_build_done`` is a pure observation hook (the scheduler keeps the
    backoff/cadence bookkeeping itself, identically for every strategy).
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def bind(self, scheduler) -> None:
        """Called once when the strategy is attached to a scheduler."""

    def on_tick(self, view: "TickView") -> None:
        """Decide the fate of ``view.due_cells()`` at this instant."""
        raise NotImplementedError

    def on_build_done(self, cell: "TestCell", build: "Build") -> None:
        """Observe a finished build (after the scheduler's bookkeeping)."""


class DefaultStrategy(SchedulingStrategy):
    """The paper's in-process policy clauses, verbatim.

    For each due cell, in cell order: skip during peak hours (hardware
    tests, calendar gate — no backoff growth), skip when the per-site
    concurrency cap is reached, defer with exponential backoff when the
    resources are not available right now, otherwise launch.
    """

    name = "default"

    def __init__(self, policy: SchedulerPolicy):
        self.policy = policy

    def on_tick(self, view: "TickView") -> None:
        policy = self.policy
        now = view.now
        for cell in view.due_cells():
            if not policy.allows_now(cell.family.kind, now):
                continue  # retry next tick; no backoff growth for calendar
            if view.in_flight(cell.site) >= policy.max_concurrent_per_site:
                continue
            if policy.check_resources_first \
                    and not view.resources_available(cell):
                view.defer(cell)
                continue
            view.launch(cell)


_STRATEGIES: dict[str, Type[SchedulingStrategy]] = {}


def register_strategy(cls: Type[SchedulingStrategy]
                      ) -> Type[SchedulingStrategy]:
    """Register a strategy class under its ``name`` (usable as decorator).

    Re-registering a name replaces the previous class (mirrors the
    subsystem registry's swap semantics)."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} needs a non-abstract 'name'")
    _STRATEGIES[cls.name] = cls
    return cls


def get_strategy(name: str) -> Type[SchedulingStrategy]:
    """Look a strategy class up by name (KeyError lists the known names)."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduling strategy: {name!r}; known strategies: "
            f"{', '.join(strategy_names())}") from None


def strategy_names() -> list[str]:
    return sorted(_STRATEGIES)


register_strategy(DefaultStrategy)
