"""Canonical JSON helpers and structural diffing.

The Reference API stores node/cluster/site descriptions as plain JSON
documents (the paper stresses the "machine-parsable format").  This module
provides the canonical encoding used for hashing/archiving, plus a deep
structural diff used both by the Reference API version history and by
g5k-checks when comparing acquired facts against the reference.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["canonical_json", "content_hash", "DiffEntry", "deep_diff", "deep_get"]


def canonical_json(doc: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def content_hash(doc: Any) -> str:
    """Short stable content hash of a JSON document."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class DiffEntry:
    """One structural difference between two JSON documents.

    ``kind`` is ``'added'`` (key only in the new document), ``'removed'``
    (only in the old one) or ``'changed'`` (present in both, different
    values).  ``path`` is a dotted path; list indices appear as ``[i]``.
    """

    path: str
    kind: str
    old: Any = None
    new: Any = None

    def __str__(self) -> str:
        if self.kind == "added":
            return f"+ {self.path} = {self.new!r}"
        if self.kind == "removed":
            return f"- {self.path} = {self.old!r}"
        return f"~ {self.path}: {self.old!r} -> {self.new!r}"


def _walk(old: Any, new: Any, path: str) -> Iterator[DiffEntry]:
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in new:
                yield DiffEntry(sub, "removed", old=old[key])
            elif key not in old:
                yield DiffEntry(sub, "added", new=new[key])
            else:
                yield from _walk(old[key], new[key], sub)
    elif isinstance(old, list) and isinstance(new, list):
        for i in range(max(len(old), len(new))):
            sub = f"{path}[{i}]"
            if i >= len(new):
                yield DiffEntry(sub, "removed", old=old[i])
            elif i >= len(old):
                yield DiffEntry(sub, "added", new=new[i])
            else:
                yield from _walk(old[i], new[i], sub)
    elif old != new:
        yield DiffEntry(path, "changed", old=old, new=new)


def deep_diff(old: Any, new: Any) -> list[DiffEntry]:
    """Structural diff between two JSON-like documents.

    >>> deep_diff({"a": 1}, {"a": 2})[0].kind
    'changed'
    """
    return list(_walk(old, new, ""))


def deep_get(doc: Any, path: str, default: Any = None) -> Any:
    """Fetch a dotted/indexed path (as produced by :func:`deep_diff`).

    >>> deep_get({"a": {"b": [10, 20]}}, "a.b[1]")
    20
    """
    cur = doc
    for part in path.split("."):
        while part:
            if "[" in part:
                key, _, rest = part.partition("[")
                idx_text, _, part = rest.partition("]")
                if key:
                    if not isinstance(cur, dict) or key not in cur:
                        return default
                    cur = cur[key]
                idx = int(idx_text)
                if not isinstance(cur, list) or idx >= len(cur):
                    return default
                cur = cur[idx]
                part = part.lstrip(".") if part else part
            else:
                if not isinstance(cur, dict) or part not in cur:
                    return default
                cur = cur[part]
                part = ""
    return cur
