"""Declarative description of one simulated world.

A :class:`ScenarioSpec` is a frozen, fully-serializable value: testbed
shape (cluster names + scale factor), workload, fault regime, scheduler
policy, test-family selection and operator model.  Everything a campaign
needs is in the spec — benchmarks and examples reference scenarios by name
or file instead of duplicating constructor kwargs, and a spec can be
shipped to a worker process or archived next to its results.

Anything *not* expressible as plain data (custom ``ClusterSpec`` objects,
pre-built ``CheckFamily`` instances) stays out of the spec and goes through
the :class:`~repro.core.builder.FrameworkBuilder` override hooks instead.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from ..checksuite.base import CheckFamily
from ..checksuite.registry import ALL_FAMILIES, family_by_name
from ..oar.traces import TraceReplayConfig
from ..oar.workload import WorkloadConfig
from ..scheduling.policies import SchedulerPolicy
from ..testbed.generator import CLUSTER_SPECS, ClusterSpec
from ..util.serialization import (
    canonical_json,
    content_hash,
    decode_dataclass,
    encode_dataclass,
)
from ..util.simclock import DAY

__all__ = ["ScenarioSpec"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One simulated world, declaratively.

    The defaults reproduce the paper's headline campaign (the
    ``paper-baseline`` preset): full 894-node testbed, five months,
    February's fault backlog, ~0.45 faults/day.
    """

    name: str = "custom"
    description: str = ""
    #: Default seed; :func:`repro.run_campaigns` fans additional seeds out.
    seed: int = 0
    months: float = 5.0
    #: Cluster names out of the synthetic catalog (``None`` = all 32).
    clusters: Optional[tuple[str, ...]] = None
    #: Node-count multiplier applied to every selected cluster — the cheap
    #: axis for "what if the testbed doubled?" scenarios.
    scale: float = 1.0
    #: Test-family names (``None`` = all sixteen).
    families: Optional[tuple[str, ...]] = None
    #: Latent faults present before testing starts (February's backlog).
    backlog_faults: int = 50
    fault_mean_interarrival_s: float = 2.2 * DAY
    policy: SchedulerPolicy = field(default_factory=SchedulerPolicy)
    #: Workload variant: a :class:`WorkloadConfig` selects the synthetic
    #: Poisson generator, a :class:`~repro.oar.traces.TraceReplayConfig`
    #: replays a recorded trace file at its timestamps.  Both are frozen
    #: data, so the JSON codec dispatches on the document's fields.
    workload: Union[WorkloadConfig, TraceReplayConfig] = field(
        default_factory=lambda: WorkloadConfig(target_utilization=0.6))
    operator_speedup: float = 1.0
    #: A2 ablation: with the framework off, nothing detects or fixes faults.
    framework_enabled: bool = True
    pernode: bool = False
    executors: int = 16
    #: Scheduling strategy name (see ``repro.scheduling.strategy_names()``;
    #: e.g. the malleable policies ``common-pool``/``steal-agreement``).
    #: Resolved at build time, so presets stay importable before every
    #: strategy module has registered.
    strategy: str = "default"

    def __post_init__(self) -> None:
        if self.clusters is not None:
            known = {s.name for s in CLUSTER_SPECS}
            unknown = [c for c in self.clusters if c not in known]
            if unknown:
                raise ValueError(
                    f"unknown cluster(s) {unknown!r}; "
                    f"valid names: {sorted(known)}")
        if self.families is not None:
            for name in self.families:
                family_by_name(name)  # raises KeyError on typos
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    # -- derivation ------------------------------------------------------------

    def derive(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with some fields replaced (presets stay immutable)."""
        return dataclasses.replace(self, **overrides)

    # -- resolution into live objects -----------------------------------------

    def resolve_cluster_specs(self) -> tuple[ClusterSpec, ...]:
        """Materialize the cluster recipes this spec selects."""
        if self.clusters is None and self.scale == 1.0:
            # Identity: keeps build_grid5000's paper-exact inventory guard.
            return CLUSTER_SPECS
        selected = (CLUSTER_SPECS if self.clusters is None else
                    tuple(s for s in CLUSTER_SPECS if s.name in set(self.clusters)))
        if self.scale == 1.0:
            return selected
        return tuple(
            dataclasses.replace(s, nodes=max(1, round(s.nodes * self.scale)))
            for s in selected)

    def resolve_families(self) -> list[CheckFamily]:
        if self.families is None:
            return list(ALL_FAMILIES)
        return [family_by_name(n) for n in self.families]

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return encode_dataclass(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        return decode_dataclass(cls, data)

    def content_hash(self) -> str:
        """Short stable hash of the full spec document.

        Two specs hash equal iff every declarative knob matches; the
        campaign store keys cells by a variant of this hash (seed
        excluded, horizon override folded in) so that two different
        worlds can never collide on one archive slot.
        """
        return content_hash(self.to_dict())

    def to_json(self, indent: Optional[int] = None) -> str:
        if indent is None:
            return canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
