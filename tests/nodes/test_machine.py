"""Tests for simulated machines."""

import pytest

from repro.nodes import MachinePark, PowerState
from repro.util import RngStreams, Simulator


@pytest.fixture()
def park(fresh_testbed):
    sim = Simulator()
    return sim, MachinePark.from_testbed(sim, fresh_testbed, RngStreams(seed=1))


def test_park_covers_all_nodes(park, fresh_testbed):
    _, p = park
    assert len(p) == fresh_testbed.node_count


def test_actual_state_matches_description_initially(park, fresh_testbed):
    _, p = park
    node = p["grimoire-1"]
    desc = fresh_testbed.node("grimoire-1")
    assert node.actual.ram_gb == desc.ram_gb
    assert node.actual.bios.c_states == desc.bios.c_states
    assert [d.firmware for d in node.actual.disks] == [d.firmware for d in desc.disks]
    assert node.actual.pdu_uid == desc.pdu.pdu_uid


def test_nodes_start_powered_on(park):
    _, p = park
    assert all(m.state == PowerState.ON for m in p.machines.values())


def test_boot_takes_cluster_scaled_time(park):
    sim, p = park
    node = p["azur-1"]  # mean boot 330s
    done = sim.process(node.boot())
    sim.run()
    assert done.triggered
    assert 200 < sim.now < 550
    assert node.boot_count == 1


def test_boot_into_environment(park):
    sim, p = park
    node = p["grisou-1"]
    sim.process(node.boot(env="debian9-min"))
    sim.run()
    assert node.deployed_env == "debian9-min"


def test_boot_durations_vary_but_reproducibly(fresh_testbed):
    def boots(seed):
        sim = Simulator()
        park = MachinePark.from_testbed(sim, fresh_testbed, RngStreams(seed=seed))
        return [park[f"grisou-{i}"].sample_boot_duration() for i in range(1, 6)]

    a, b = boots(7), boots(7)
    assert a == b
    assert len(set(a)) > 1  # jitter across nodes


def test_boot_race_fault_inflates_some_boots(park):
    _, p = park
    node = p["grisou-2"]
    node.boot_race_delay_s = 300.0
    samples = [node.sample_boot_duration() for _ in range(40)]
    slow = [s for s in samples if s > 300]
    fast = [s for s in samples if s <= 300]
    assert slow and fast  # intermittent: some boots hit the race, some don't


def test_crash_makes_unavailable(park):
    _, p = park
    node = p["uvb-1"]
    node.crash()
    assert node.state == PowerState.CRASHED
    assert not node.available


def test_cpu_performance_reference_is_unity(park):
    _, p = park
    assert p["paravance-1"].cpu_performance_factor() == 1.0


def test_c_states_drift_costs_five_percent(park):
    _, p = park
    node = p["paravance-1"]
    node.actual.bios.c_states = True
    assert node.cpu_performance_factor() == pytest.approx(0.95)


def test_power_profile_drift_costs_seven_percent(park):
    _, p = park
    node = p["paravance-1"]
    node.actual.bios.power_profile = "balanced"
    assert node.cpu_performance_factor() == pytest.approx(0.93)


def test_disk_bandwidth_reference(park):
    _, p = park
    node = p["grimoire-1"]
    hdd = node.disk_bandwidth_mbps("sdb")  # Toshiba HDD
    ssd = node.disk_bandwidth_mbps("sdd")  # Intel SSD
    assert 100 < hdd < 150
    assert ssd > 400


def test_disk_write_cache_off_halves_bandwidth(park):
    _, p = park
    node = p["grimoire-1"]
    ref = node.disk_bandwidth_mbps("sdb")
    node.find_disk("sdb").write_cache = False
    assert node.disk_bandwidth_mbps("sdb") == pytest.approx(ref * 0.45)


def test_old_firmware_slows_disk(park):
    _, p = park
    node = p["grimoire-1"]
    ref = node.disk_bandwidth_mbps("sdb")
    node.find_disk("sdb").firmware = "FL1A"  # one version behind FL1D
    assert node.disk_bandwidth_mbps("sdb") == pytest.approx(ref * 0.95)


def test_dead_disk_has_zero_bandwidth(park):
    _, p = park
    node = p["grimoire-1"]
    node.find_disk("sdb").healthy = False
    assert node.disk_bandwidth_mbps("sdb") == 0.0


def test_network_rate_and_link_down(park):
    _, p = park
    node = p["grisou-1"]
    assert node.network_rate_gbps("eth0") == 10.0
    node.find_nic("eth0").link_up = False
    assert node.network_rate_gbps("eth0") == 0.0


def test_power_draw_scales_with_load(park):
    _, p = park
    node = p["paravance-1"]
    idle = node.power_draw_watts()
    node.cpu_load = 1.0
    busy = node.power_draw_watts()
    assert busy > idle > 50


def test_power_draw_when_off(park):
    _, p = park
    node = p["paravance-1"]
    node.crash()
    assert node.power_draw_watts() < 10


def test_find_disk_unknown_raises(park):
    _, p = park
    with pytest.raises(KeyError):
        p["azur-1"].find_disk("sdz")
    with pytest.raises(KeyError):
        p["azur-1"].find_nic("eth9")


def test_cluster_and_site_selectors(park, fresh_testbed):
    _, p = park
    grisou = p.of_cluster("grisou")
    assert len(grisou) == fresh_testbed.cluster("grisou").node_count
    nancy = p.of_site("nancy")
    assert len(nancy) == fresh_testbed.site("nancy").node_count
    grisou[0].crash()
    assert len(p.available_in_cluster("grisou")) == len(grisou) - 1


def test_visible_logical_cpus_depends_on_ht(park):
    _, p = park
    node = p["paravance-1"]  # E5-2630 v3: 2x8 cores, 2 threads
    assert node.actual.visible_logical_cpus() == 16  # HT off by default
    node.actual.bios.hyperthreading = True
    assert node.actual.visible_logical_cpus() == 32
