"""The paper's contribution: the testing framework and campaign loop."""

from .bugtracker import Bug, BugStatus, BugTracker, OperatorTeam
from .campaign import CampaignConfig, CampaignReport, run_campaign
from .framework import TestingFramework, build_framework

__all__ = [
    "Bug",
    "BugStatus",
    "BugTracker",
    "OperatorTeam",
    "TestingFramework",
    "build_framework",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
]
