"""ERR302 fixture: unbounded sleep-loop positives and negatives."""

import time
import time as t
from time import sleep


def positives(transport, state):
    while True:
        transport.poll()
        time.sleep(0.05)  # EXPECT(ERR302)
    while not state.done:  # no Compare: `not x` bounds nothing
        time.sleep(0.1)  # EXPECT(ERR302)
    while True:
        t.sleep(0.05)  # EXPECT(ERR302) — aliased module
    while True:
        sleep(0.05)  # EXPECT(ERR302) — from-import


def nested_unbounded(transport):
    while True:
        while True:
            time.sleep(0.01)  # EXPECT(ERR302) — flagged once, not per loop
            transport.poll()


def negatives(transport, waiting, active, deadline, retries):
    while time.monotonic() < deadline:  # bounded by a deadline
        time.sleep(0.05)
    while len(waiting) + len(active) > 0:  # bounded by work remaining
        time.sleep(0.02)
    attempt = 0
    while attempt < retries:  # bounded by an attempt cap
        attempt += 1
        time.sleep(0.05)
    for _ in range(retries):  # a for-loop is finite by construction
        time.sleep(0.05)
    time.sleep(0.5)  # straight-line sleep: a pause, not a spin
    while True:
        line = transport.recv_line()  # blocking recv, no sleep: fine
        if line:
            return line


def closure_is_not_the_loop(queue):
    while True:
        def later():  # nested def: its sleep is not this loop's wait
            time.sleep(1.0)
        queue.put(later)
        return queue
