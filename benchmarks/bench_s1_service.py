"""S1 — wire-protocol overhead: remote vs in-process scheduling.

Runs the ``bursty-replay`` scenario twice at the same seed — once
in-process, once through the socket service driven by the bundled
reference client — and measures the workload throughput of each path
(submitted jobs per wall-clock second).  The remote path pays one
synchronous protocol round per scheduler tick with due cells, so the
ratio is the protocol's end-to-end overhead.

Also asserts the PR's determinism contract on a workload-heavy scenario:
the remote report is byte-identical (same canonical JSON, same sha256)
to the in-process one.  Numbers land in
``benchmarks/results/BENCH_s1_service.json``.
"""

import hashlib
import json
import os
import time

from repro import run_scenario, scenarios
from repro.service import ReferenceClient, SimulatorService

from conftest import paper_row, print_table

_RESULTS = os.path.join(os.path.dirname(__file__), "results",
                        "BENCH_s1_service.json")
_MONTHS = 0.12  # the horizon the bundled trace was recorded over
_SCENARIO = "bursty-replay"


def _report_hash(doc: dict) -> str:
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def bench_s1_service(benchmark):
    spec = scenarios.get(_SCENARIO)

    t0 = time.perf_counter()
    fw, report = run_scenario(spec, seed=0, months=_MONTHS)
    t_local = time.perf_counter() - t0
    jobs = fw.workload.submitted
    local_hash = _report_hash(report.to_dict())

    svc = SimulatorService(port=0).start()
    try:
        host, port = svc.address
        with ReferenceClient(host, port) as client:
            t0 = time.perf_counter()
            result = benchmark.pedantic(
                lambda: client.run_scenario(_SCENARIO, seed=0,
                                            months=_MONTHS),
                rounds=1, iterations=1)
            t_remote = time.perf_counter() - t0
    finally:
        svc.stop()

    local_jps = jobs / max(t_local, 1e-9)
    remote_jps = jobs / max(t_remote, 1e-9)
    overhead = t_remote / max(t_local, 1e-9)

    rows = [
        paper_row("workload jobs", "-", jobs),
        paper_row("in-process (jobs/s)", "-", f"{local_jps:.0f}"),
        paper_row("remote (jobs/s)", "-", f"{remote_jps:.0f}"),
        paper_row("protocol rounds (ticks)", "-", result["ticks"]),
        paper_row("remote/in-process wall", "-", f"{overhead:.2f}x"),
        paper_row("remote report", "byte-identical",
                  "yes" if result["sha256"] == local_hash else "NO"),
    ]
    print_table("S1: simulator-as-a-service overhead", rows)

    os.makedirs(os.path.dirname(_RESULTS), exist_ok=True)
    with open(_RESULTS, "w", encoding="utf-8") as fh:
        json.dump({
            "id": "s1_service",
            "metrics": {
                "workload_jobs": jobs,
                "inprocess_wall_s": round(t_local, 3),
                "inprocess_jobs_per_s": round(local_jps, 1),
                "remote_wall_s": round(t_remote, 3),
                "remote_jobs_per_s": round(remote_jps, 1),
                "remote_ticks": result["ticks"],
                "remote_overhead_x": round(overhead, 2),
            },
            "outcome": "passed",
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # the acceptance criterion, on the heavier replay scenario
    assert result["sha256"] == local_hash
    # localhost protocol rounds are cheap: the remote path must stay in
    # the same order of magnitude (catches per-decision quadratic work
    # or an accidental unpipelined chat inside the tick loop)
    assert remote_jps > local_jps / 10
