"""Policies of the external test scheduler (slide 17).

The external tool "queries the job status and the testbed status, and
decides to submit a job based on: resources availability, retry policy
(exponential backoff), additional policies (peak hours, avoid several jobs
on same site)".  Each policy here is one of those clauses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.simclock import DAY, HOUR, is_peak_hours

__all__ = ["SchedulerPolicy", "Backoff"]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Tunable knobs (the A3 ablation bench sweeps these)."""

    #: Re-run cadence of a cell after a completed build.  With 751 cells
    #: (448 of them deployments) these cadences keep the framework's own
    #: load at a few hundred builds per day, like the real instance.
    software_period_s: float = 3 * DAY
    hardware_period_s: float = 7 * DAY
    #: Exponential backoff after a blocked/unstable attempt.
    backoff_initial_s: float = 1 * HOUR
    backoff_factor: float = 2.0
    backoff_max_s: float = 4 * DAY
    #: Keep resource-hungry tests out of users' peak hours.
    avoid_peak_hours_for_hardware: bool = True
    #: At most this many framework builds in flight per site.
    max_concurrent_per_site: int = 1
    #: Check resources availability before triggering (skipping this is the
    #: naive baseline that wastes Jenkins workers — slide 16).
    check_resources_first: bool = True

    def allows_now(self, kind: str, t: float) -> bool:
        if kind == "hardware" and self.avoid_peak_hours_for_hardware:
            return not is_peak_hours(t)
        return True


class Backoff:
    """Exponential backoff state for one test cell."""

    __slots__ = ("_policy", "_current_s", "attempts")

    def __init__(self, policy: SchedulerPolicy):
        self._policy = policy
        self._current_s = policy.backoff_initial_s
        self.attempts = 0

    @property
    def current_s(self) -> float:
        return self._current_s

    def next_delay(self) -> float:
        """Delay to wait after a failed attempt; grows exponentially."""
        delay = self._current_s
        self.attempts += 1
        self._current_s = min(self._current_s * self._policy.backoff_factor,
                              self._policy.backoff_max_s)
        return delay

    def reset(self) -> None:
        self._current_s = self._policy.backoff_initial_s
        self.attempts = 0
