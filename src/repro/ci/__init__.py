"""Jenkins-shaped CI server: jobs, builds, queue, matrix projects, API."""

from .api import JenkinsApi
from .job import Build, BuildStatus, JobDefinition
from .matrix import MatrixProject, matrix_reloaded
from .server import JenkinsServer
from .triggers import PeriodicTrigger

__all__ = [
    "BuildStatus",
    "Build",
    "JobDefinition",
    "JenkinsServer",
    "MatrixProject",
    "matrix_reloaded",
    "JenkinsApi",
    "PeriodicTrigger",
]
