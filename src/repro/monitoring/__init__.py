"""Monitoring: metric ring buffers, Ganglia system probes, kwapi power."""

from .metrics import MetricStore, RingBuffer, SeriesStats
from .probes import Ganglia, Kwapi

__all__ = ["MetricStore", "RingBuffer", "SeriesStats", "Ganglia", "Kwapi"]
