"""Kadeploy: scalable OS deployment as a three-phase state machine.

Phases (mirroring the real tool):

1. **minenv** — reboot every node into the lightweight deployment
   environment (parallel; each node's boot can fail);
2. **broadcast** — chain-broadcast the image and write it to disk
   (:mod:`repro.kadeploy.kascade` timing model);
3. **boot** — install the bootloader and reboot into the deployed system;
   a node "succeeds" only if it comes back *and* the image actually works
   on that cluster (the ``ENV_IMAGE_BROKEN`` fault makes it not).

Nodes that fail a phase are retried once (as kadeploy does); nodes failing
twice are reported failed.  A cluster under ``DEPLOY_DEGRADED`` sees an
extra per-node failure probability in phases 1 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..faults.services import ServiceHealth
from ..nodes.machine import MachinePark, PowerState, SimulatedNode
from ..util.errors import DeploymentError
from ..util.events import Simulator
from ..util.rng import RngStreams
from .images import EnvironmentImage, image_by_name
from .kascade import broadcast_time_s

__all__ = ["NodeDeployOutcome", "DeploymentResult", "Kadeploy"]

#: Deployment-environment boots are lighter than full system boots.
_MINENV_BOOT_FACTOR = 0.6

#: Per-node probability that the disk write of the image fails.
_WRITE_FAILURE_PROB = 0.0005


@dataclass
class NodeDeployOutcome:
    node_uid: str
    ok: bool
    failed_phase: Optional[str] = None  # "minenv" | "broadcast" | "boot" | "sanity"
    retried: bool = False


@dataclass
class DeploymentResult:
    """Outcome of one deployment run."""

    image: str
    started_at: float
    finished_at: float
    outcomes: dict[str, NodeDeployOutcome] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def deployed(self) -> list[str]:
        return sorted(u for u, o in self.outcomes.items() if o.ok)

    @property
    def failed(self) -> dict[str, str]:
        return {u: o.failed_phase for u, o in self.outcomes.items() if not o.ok}

    @property
    def success_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return len(self.deployed) / len(self.outcomes)


class Kadeploy:
    """Deployment service over a machine park."""

    def __init__(self, sim: Simulator, machines: MachinePark,
                 services: ServiceHealth, rng_streams: RngStreams):
        self.sim = sim
        self.machines = machines
        self.services = services
        self._rng = rng_streams.stream("kadeploy")
        self.deployments_run = 0

    # -- public API ----------------------------------------------------------

    def deploy(self, node_uids: list[str], image_name: str):
        """Process generator deploying ``image_name``; returns the result.

        Usage::

            result = yield sim.process(kadeploy.deploy(nodes, "debian9-min"))
        """
        if not node_uids:
            raise DeploymentError("empty node list")
        image = image_by_name(image_name)
        machines = [self.machines[u] for u in node_uids]
        started = self.sim.now
        self.deployments_run += 1
        outcomes = {m.uid: NodeDeployOutcome(m.uid, ok=False) for m in machines}
        yield from self._run_attempt(machines, image, outcomes)
        return DeploymentResult(
            image=image.name,
            started_at=started,
            finished_at=self.sim.now,
            outcomes=outcomes,
        )

    def reboot(self, node_uids: list[str]):
        """Process generator: plain reboot (no image change).

        Returns the per-node success dict (used by the multireboot family).
        """
        machines = [self.machines[u] for u in node_uids]
        boots = [self.sim.process(m.boot()) for m in machines]
        yield self.sim.all_of(boots)
        return {m.uid: m.state == PowerState.ON for m in machines}

    # -- phases ---------------------------------------------------------------

    def _extra_failure(self, machine: SimulatedNode) -> float:
        return self.services.deploy_extra_failure_prob(machine.cluster_uid) / 2.0

    def _run_attempt(self, machines: list[SimulatedNode], image: EnvironmentImage,
                     outcomes: dict[str, NodeDeployOutcome]):
        # Phase 1: reboot into the deployment environment.
        alive = yield from self._reboot_phase(machines, outcomes, "minenv",
                                              boot_factor=_MINENV_BOOT_FACTOR)
        if not alive:
            return []
        # Phase 2: chain broadcast.
        network_mbps = min(m.network_rate_gbps() for m in alive) * 125.0  # Gbps->MB/s
        disk_mbps = min(m.disk_bandwidth_mbps(m.actual.disks[0].device) or 1.0
                        for m in alive)
        yield self.sim.timeout(
            broadcast_time_s(image.size_mb, len(alive),
                             max(network_mbps, 1.0), max(disk_mbps, 1.0))
        )
        writers = []
        for m in alive:
            if float(self._rng.random()) < _WRITE_FAILURE_PROB:
                outcomes[m.uid].failed_phase = "broadcast"
                m.crash()
            else:
                writers.append(m)
        if not writers:
            return []
        # Phase 3: reboot into the deployed environment + sanity check.
        booted = yield from self._reboot_phase(writers, outcomes, "boot",
                                               env=image.name)
        deployed = []
        for m in booted:
            if self.services.image_ok(image.name, m.cluster_uid):
                outcomes[m.uid].ok = True
                deployed.append(m)
            else:
                outcomes[m.uid].failed_phase = "sanity"
        return deployed

    def _reboot_phase(self, machines: list[SimulatedNode],
                      outcomes: dict[str, NodeDeployOutcome], phase: str,
                      boot_factor: float = 1.0, env: Optional[str] = None):
        """Boot all machines; nodes that fail are retried once *within* the
        phase (kadeploy's behaviour — stragglers don't restart the whole
        deployment, which is what keeps 200 nodes around five minutes)."""
        boots = [self.sim.process(self._boot_with_retry(m, boot_factor, env))
                 for m in machines]
        done = yield self.sim.all_of(boots)
        alive: list[SimulatedNode] = []
        for m, proc in zip(machines, boots):
            attempts = done[proc]
            if attempts > 1:
                outcomes[m.uid].retried = True
            extra = self._extra_failure(m)
            if m.state == PowerState.ON and float(self._rng.random()) >= extra:
                alive.append(m)
            else:
                if m.state == PowerState.ON:
                    m.crash()  # service-level failure killed the step
                outcomes[m.uid].failed_phase = phase
        return alive

    def _boot_with_retry(self, machine: SimulatedNode, boot_factor: float,
                         env: Optional[str], attempts: int = 2):
        """Boot; on failure, immediately power-cycle again (up to
        ``attempts`` total).  Returns the number of attempts used."""
        used = 0
        for _ in range(attempts):
            used += 1
            yield from self._boot_one(machine, boot_factor, env)
            if machine.state == PowerState.ON:
                break
        return used

    def _boot_one(self, machine: SimulatedNode, boot_factor: float,
                  env: Optional[str]):
        duration = machine.sample_boot_duration() * boot_factor
        machine.state = PowerState.BOOTING
        yield self.sim.timeout(duration)
        machine.boot_count += 1
        if machine.sample_boot_ok():
            if env is not None:
                machine.deployed_env = env
            machine.state = PowerState.ON
        else:
            machine.state = PowerState.CRASHED
        return duration
