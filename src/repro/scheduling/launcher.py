"""The external test scheduler (slides 16-17).

Jenkins' time-based scheduling cannot cope with a heavily-used testbed:
hardware-centric tests need *all* nodes of a cluster, and "waiting for all
nodes of a given cluster to be available can take weeks".  One cannot just
submit-and-wait either, because that "would use a Jenkins worker" and
"compete with user requests".

This external tool therefore:

* keeps one *cell* per (family, configuration) with its own re-run cadence
  and exponential-backoff retry state;
* on every tick, queries **the testbed status** (free alive nodes per
  cluster/site via OAR) and **the job status** (builds in flight via
  Jenkins), and only triggers a build when the policies allow:
  resource availability, peak hours, per-site concurrency;
* relies on the test scripts' immediate-or-cancel OAR submissions: if the
  testbed job cannot start at once the build comes back UNSTABLE, and the
  cell backs off exponentially.

The per-node scheduling alternative (the paper's closing open question) is
in :mod:`repro.scheduling.pernode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..checksuite.base import CheckFamily
from ..ci.job import Build, BuildStatus
from ..ci.server import JenkinsServer
from ..oar.server import OarServer
from ..testbed.description import TestbedDescription
from ..util.events import Simulator
from .policies import Backoff, DefaultStrategy, SchedulerPolicy, \
    SchedulingStrategy

__all__ = ["TestCell", "TickView", "ExternalScheduler"]


@dataclass(eq=False)
class TestCell:
    """One (family, configuration) pair with its scheduling state."""

    family: CheckFamily
    config: dict[str, Any]
    site: str
    cluster: Optional[str]
    backoff: Backoff
    next_attempt_at: float = 0.0
    in_flight: bool = False
    runs: int = 0
    blocked_attempts: int = 0

    @property
    def job_name(self) -> str:
        return f"test_{self.family.name}"


class TickView:
    """What a :class:`SchedulingStrategy` sees and does at one tick.

    The view is a thin facade over the scheduler: reads (due cells,
    availability, per-site concurrency) are live, and ``launch``/``defer``
    apply immediately — a launch within the tick counts against the site's
    concurrency for the cells decided after it, exactly as the historical
    inline loop behaved.
    """

    __slots__ = ("scheduler", "now")

    def __init__(self, scheduler: "ExternalScheduler"):
        self.scheduler = scheduler
        self.now = scheduler.sim.now

    def due_cells(self) -> list[TestCell]:
        """Cells eligible for an attempt right now, in cell order."""
        now = self.now
        return [c for c in self.scheduler.cells
                if not c.in_flight and c.next_attempt_at <= now]

    def cell_id(self, cell: TestCell) -> int:
        """Stable identifier of a cell (its index in construction order)."""
        return self.scheduler.cell_ids[id(cell)]

    def in_flight(self, site: str) -> int:
        return self.scheduler._in_flight_per_site.get(site, 0)

    def resources_available(self, cell: TestCell) -> bool:
        return self.scheduler.resources_available(cell)

    def availability(self, cell: TestCell) -> tuple[int, int]:
        """(alive, free-now) node counts of the cell's target set — the
        exact numbers :meth:`resources_available` decides on."""
        return self.scheduler.availability(cell)

    def cluster_states(self) -> list[tuple[str, str, int, int]]:
        """(cluster, site, alive, free-now) per cluster, testbed order."""
        return self.scheduler.cluster_states()

    def launch(self, cell: TestCell) -> None:
        self.scheduler._launch(cell)

    def defer(self, cell: TestCell) -> None:
        """Blocked attempt: grow the cell's exponential backoff."""
        cell.blocked_attempts += 1
        cell.next_attempt_at = self.now + cell.backoff.next_delay()


class ExternalScheduler:
    """Availability-aware build launcher over Jenkins + OAR."""

    def __init__(
        self,
        sim: Simulator,
        jenkins: JenkinsServer,
        oar: OarServer,
        testbed: TestbedDescription,
        families: list[CheckFamily],
        policy: SchedulerPolicy = SchedulerPolicy(),
        tick_s: float = 300.0,
        on_build_done: Optional[Callable[[TestCell, Build], None]] = None,
        strategy: Optional[SchedulingStrategy] = None,
    ):
        self.sim = sim
        self.jenkins = jenkins
        self.oar = oar
        self.testbed = testbed
        self.policy = policy
        self.tick_s = tick_s
        self.on_build_done = on_build_done
        self.cells: list[TestCell] = []
        self._in_flight_per_site: dict[str, int] = {}
        self._site_of_cluster = {c.uid: c.site for c in testbed.iter_clusters()}
        self._cluster_nodes = {c.uid: [n.uid for n in c.nodes]
                               for c in testbed.iter_clusters()}
        self._site_nodes: dict[str, list[str]] = {}
        for site in testbed.sites:
            self._site_nodes[site.uid] = [n.uid for c in site.clusters
                                          for n in c.nodes]
        # Bitmasks of the same node sets (bit order == OAR database order):
        # the short-horizon availability probes become one profile query
        # plus a bit test per node, instead of a timeline bisect per node
        # per tick.
        gantt = oar.gantt
        self._cluster_masks = {uid: gantt.mask_for(nodes)
                               for uid, nodes in self._cluster_nodes.items()}
        self._site_masks = {uid: gantt.mask_for(nodes)
                            for uid, nodes in self._site_nodes.items()}
        for family in families:
            for config in family.configurations(testbed):
                cluster = config.get("cluster")
                site = config.get("site") or self._site_of_cluster[cluster]
                self.cells.append(TestCell(
                    family=family, config=config, site=site, cluster=cluster,
                    backoff=Backoff(policy),
                ))
        #: id(cell) -> stable cell index (the wire protocol's cell id).
        self.cell_ids = {id(c): i for i, c in enumerate(self.cells)}
        self.strategy = strategy if strategy is not None \
            else DefaultStrategy(policy)
        self.strategy.bind(self)
        self._running = False
        self._proc = None

    # -- testbed status queries ----------------------------------------------

    def _target(self, cell: TestCell) -> tuple[list[str], int]:
        """A cell's target node set with its precomputed bitmask."""
        if cell.cluster is not None:
            return (self._cluster_nodes[cell.cluster],
                    self._cluster_masks[cell.cluster])
        return self._site_nodes[cell.site], self._site_masks[cell.site]

    def _free_alive(self, uids: list[str], mask: Optional[int] = None) -> int:
        """Nodes alive and not reserved right now (short horizon probe).

        With a precomputed ``mask``, one availability-profile query covers
        the whole set and each node costs a bit test; the per-node
        timeline-bisect loop remains the ``use_profile = False`` baseline
        (identical counts — covered by the launcher equivalence tests).
        """
        now = self.sim.now
        oar = self.oar
        if mask is not None and oar.gantt.use_profile:
            fmask = oar.gantt.profile_free_mask(mask, now, now + 60.0)
            bit = oar.gantt.bit
            return sum(1 for uid in uids
                       if fmask >> bit(uid) & 1
                       and oar.node_state(uid) == "Alive")
        count = 0
        for uid in uids:
            if oar.node_state(uid) != "Alive":
                continue
            if oar.gantt.is_free(uid, now, now + 60.0):
                count += 1
        return count

    def resources_available(self, cell: TestCell) -> bool:
        need = cell.family.nodes_needed
        if need == 0:
            return True
        uids, mask = self._target(cell)
        if need == "ALL":
            alive = sum(1 for u in uids if self.oar.node_state(u) == "Alive")
            return alive > 0 and self._free_alive(uids, mask) == alive
        return self._free_alive(uids, mask) >= int(need)

    def availability(self, cell: TestCell) -> tuple[int, int]:
        """(alive, free-now) counts over the cell's target node set."""
        uids, mask = self._target(cell)
        alive = sum(1 for u in uids if self.oar.node_state(u) == "Alive")
        return alive, self._free_alive(uids, mask)

    def cluster_states(self) -> list[tuple[str, str, int, int]]:
        """(cluster, site, alive, free-now) per cluster, in testbed order
        (the ds-sim-style ``GETS servers`` answer)."""
        out = []
        for cluster in self.testbed.iter_clusters():
            uids = self._cluster_nodes[cluster.uid]
            alive = sum(1 for u in uids
                        if self.oar.node_state(u) == "Alive")
            out.append((cluster.uid, cluster.site, alive,
                        self._free_alive(uids, self._cluster_masks[cluster.uid])))
        return out

    # -- main loop ------------------------------------------------------------

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._proc = self.sim.process(self._run(), name="external-scheduler")

    def stop(self) -> None:
        """Stop promptly: interrupt the tick sleep instead of letting the
        process linger until its next timeout fires."""
        self._running = False
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("stopped")
        self._proc = None

    def _run(self):
        while self._running:
            self._tick()
            yield self.sim.timeout(self.tick_s)

    def _tick(self) -> None:
        self.strategy.on_tick(TickView(self))

    def _launch(self, cell: TestCell) -> None:
        cell.in_flight = True
        cell.runs += 1
        self._in_flight_per_site[cell.site] = \
            self._in_flight_per_site.get(cell.site, 0) + 1
        build = self.jenkins.trigger(cell.job_name, parameters=cell.config,
                                     cause="external-scheduler")
        build.done_event.add_callback(lambda ev, c=cell: self._on_done(c, ev.value))

    def _on_done(self, cell: TestCell, build: Build) -> None:
        cell.in_flight = False
        self._in_flight_per_site[cell.site] -= 1
        if build.status in (BuildStatus.UNSTABLE, BuildStatus.ABORTED):
            # Could not get resources (or timed out): exponential backoff.
            cell.next_attempt_at = self.sim.now + cell.backoff.next_delay()
        else:
            cell.backoff.reset()
            period = (self.policy.hardware_period_s
                      if cell.family.kind == "hardware"
                      else self.policy.software_period_s)
            cell.next_attempt_at = self.sim.now + period
        self.strategy.on_build_done(cell, build)
        if self.on_build_done is not None:
            self.on_build_done(cell, build)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "cells": len(self.cells),
            "in_flight": sum(1 for c in self.cells if c.in_flight),
            "total_runs": sum(c.runs for c in self.cells),
            "total_blocked": sum(c.blocked_attempts for c in self.cells),
        }
