"""Simulator-as-a-service: drive campaigns from another process.

Layers, bottom up:

* :mod:`~repro.service.protocol` — the versioned line codec (verbs,
  arities, ``DATA`` framing, typed errors);
* :mod:`~repro.service.session` — the per-connection state machine that
  bridges protocol messages into the event kernel;
* :mod:`~repro.service.policy` — ``ExternalProtocolStrategy``, the
  adapter registered as a regular scheduling strategy;
* :mod:`~repro.service.campaign` — the deduplicating matrix runner over
  a shared :class:`~repro.core.store.CampaignStore`;
* :mod:`~repro.service.resume` — run tokens and the replayable decision
  log behind the ``RESM`` verb;
* :mod:`~repro.service.chaos` — the seeded fault-injecting transport
  wrapper the convergence suite drives;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the TCP
  service and the bundled reference client.

See the README's "Driving the simulator from another process" section
for the verb table, the determinism contract, and failure semantics.
"""

from .campaign import CampaignService
from .chaos import ChaosConfig, ChaosPlan, ChaosTransport
from .client import ClientError, ConnectionLost, ReferenceClient, ServerError
from .policy import ExternalProtocolStrategy
from .protocol import PROTOCOL_VERSION, Message, ProtocolError, decode, encode
from .resume import RunRecord, RunRegistry
from .server import SimulatorService
from .session import Session, SessionClosed, SocketTransport, Transport

__all__ = [
    "PROTOCOL_VERSION",
    "Message",
    "ProtocolError",
    "encode",
    "decode",
    "Session",
    "SessionClosed",
    "Transport",
    "SocketTransport",
    "ExternalProtocolStrategy",
    "CampaignService",
    "SimulatorService",
    "ReferenceClient",
    "ClientError",
    "ServerError",
    "ConnectionLost",
    "RunRecord",
    "RunRegistry",
    "ChaosConfig",
    "ChaosPlan",
    "ChaosTransport",
]
