"""Coverage-table tests: the slide-21 counts must be exact."""

from repro.checksuite import ALL_FAMILIES, coverage_table, family_by_name, total_configurations


def test_sixteen_families():
    assert len(ALL_FAMILIES) == 16


def test_family_names_match_slide_21():
    names = {f.name for f in ALL_FAMILIES}
    assert names == {
        "refapi", "oarproperties", "dellbios", "oarstate", "cmdline", "sidapi",
        "environments", "stdenv", "paralleldeploy", "multireboot", "multideploy",
        "console", "kavlan", "kwapi", "mpigraph", "disk",
    }


def test_total_is_751_configurations(testbed):
    """Slide 21: 'Coverage (total of 751 test configurations)'."""
    assert total_configurations(testbed) == 751


def test_environments_matrix_is_448(testbed):
    """Slide 15: 14 images x 32 clusters."""
    assert coverage_table(testbed)["environments"] == 448


def test_per_cluster_families_have_32_cells(testbed):
    table = coverage_table(testbed)
    for name in ("refapi", "oarproperties", "stdenv", "paralleldeploy",
                 "multireboot", "multideploy", "console"):
        assert table[name] == 32, name


def test_per_site_families_have_8_cells(testbed):
    table = coverage_table(testbed)
    for name in ("oarstate", "cmdline", "sidapi", "kwapi", "kavlan"):
        assert table[name] == 8, name


def test_hardware_specific_families(testbed):
    table = coverage_table(testbed)
    assert table["dellbios"] == 18  # Dell clusters
    assert table["mpigraph"] == 12  # Infiniband clusters
    assert table["disk"] == 9  # multi-disk clusters


def test_family_kinds():
    hardware = {f.name for f in ALL_FAMILIES if f.kind == "hardware"}
    assert hardware == {"paralleldeploy", "multireboot", "multideploy"}


def test_family_by_name_lookup():
    assert family_by_name("disk").name == "disk"
    import pytest

    with pytest.raises(KeyError):
        family_by_name("nonexistent")


def test_nodes_needed_declared():
    declared = {f.name: f.nodes_needed for f in ALL_FAMILIES}
    assert declared["paralleldeploy"] == "ALL"
    assert declared["multireboot"] == "ALL"
    assert declared["multideploy"] == "ALL"
    assert declared["environments"] == 1
    assert declared["kavlan"] == 2
    assert declared["oarstate"] == 0
