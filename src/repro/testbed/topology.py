"""Network topology of the testbed as a networkx graph.

Structure (matching the paper's slide-6/8 sketch):

* every node's primary NIC connects to a **top-of-rack switch** (one switch
  per 48 nodes per cluster);
* ToR switches uplink to the **site router**;
* site routers form a full-mesh **10 Gbps dedicated backbone**.

The topology serves two consumers:

* KaVLAN (:mod:`repro.kavlan`) reconfigures switch ports to move nodes
  between VLANs;
* the network-oriented checks compute expected end-to-end bandwidth as the
  min edge capacity along the shortest path.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx

from .description import TestbedDescription

__all__ = ["NetworkTopology", "build_topology"]

_SWITCH_PORTS = 48


class NetworkTopology:
    """Graph wrapper with testbed-aware queries.

    Graph node kinds (attribute ``kind``): ``node`` (compute node),
    ``switch`` (ToR), ``router`` (one per site).  Edges carry ``gbps``.
    """

    def __init__(self, graph: nx.Graph):
        self.graph = graph

    # -- inventory ---------------------------------------------------------

    def kind(self, name: str) -> str:
        return self.graph.nodes[name]["kind"]

    def iter_kind(self, kind: str) -> Iterator[str]:
        for name, data in self.graph.nodes(data=True):
            if data["kind"] == kind:
                yield name

    @property
    def switch_count(self) -> int:
        return sum(1 for _ in self.iter_kind("switch"))

    @property
    def router_count(self) -> int:
        return sum(1 for _ in self.iter_kind("router"))

    def switch_of(self, node_uid: str) -> str:
        """The ToR switch a compute node is wired to."""
        if self.graph.nodes[node_uid]["kind"] != "node":
            raise KeyError(f"{node_uid} is not a compute node")
        for neighbor in self.graph.neighbors(node_uid):
            if self.graph.nodes[neighbor]["kind"] == "switch":
                return neighbor
        raise KeyError(f"{node_uid} has no switch link")

    def nodes_on_switch(self, switch: str) -> list[str]:
        return sorted(
            n for n in self.graph.neighbors(switch)
            if self.graph.nodes[n]["kind"] == "node"
        )

    # -- path queries --------------------------------------------------------

    def path(self, a: str, b: str) -> list[str]:
        """Shortest path between two graph nodes."""
        return nx.shortest_path(self.graph, a, b)

    def path_bandwidth_gbps(self, a: str, b: str) -> float:
        """Min edge capacity along the shortest path (the bottleneck)."""
        path = self.path(a, b)
        return min(
            self.graph.edges[u, v]["gbps"] for u, v in zip(path, path[1:])
        )

    def hop_count(self, a: str, b: str) -> int:
        return len(self.path(a, b)) - 1

    def same_switch(self, a: str, b: str) -> bool:
        return self.switch_of(a) == self.switch_of(b)


def build_topology(testbed: TestbedDescription) -> NetworkTopology:
    """Derive the physical topology from the testbed description."""
    g = nx.Graph()
    routers = {}
    for site in testbed.sites:
        router = f"gw-{site.uid}"
        g.add_node(router, kind="router", site=site.uid)
        routers[site.uid] = router
    # Dedicated backbone: full mesh between site routers at backbone rate.
    site_ids = [s.uid for s in testbed.sites]
    for i, a in enumerate(site_ids):
        for b in site_ids[i + 1:]:
            g.add_edge(routers[a], routers[b], gbps=testbed.backbone_gbps)
    for cluster in testbed.iter_clusters():
        n_switches = (cluster.node_count + _SWITCH_PORTS - 1) // _SWITCH_PORTS
        switches = []
        for k in range(n_switches):
            sw = f"sw-{cluster.uid}-{k + 1}"
            uplink = max(10.0, cluster.nodes[0].primary_nic.rate_gbps)
            g.add_node(sw, kind="switch", site=cluster.site, cluster=cluster.uid)
            g.add_edge(sw, routers[cluster.site], gbps=uplink)
            switches.append(sw)
        for idx, node in enumerate(cluster.nodes):
            sw = switches[idx // _SWITCH_PORTS]
            g.add_node(node.uid, kind="node", site=cluster.site, cluster=cluster.uid)
            g.add_edge(node.uid, sw, gbps=node.primary_nic.rate_gbps)
    return NetworkTopology(g)
