"""Scenario-vs-baseline comparison: deltas, CI overlap, rendering."""

import math

import pytest

from repro.analysis import compare_aggregates, compare_runs, format_comparison
from repro.core.batch import MetricSummary


def summary(mean, ci95=0.0, n=3, std=0.0):
    return MetricSummary(mean=mean, std=std, ci95=ci95, n=n)


def aggregated(**scenarios):
    """{scenario: {metric: MetricSummary}} from keyword shorthand."""
    return scenarios


def test_disjoint_intervals_are_significant():
    agg = aggregated(
        base={"bugs_filed": summary(10.0, ci95=1.0)},
        louder={"bugs_filed": summary(20.0, ci95=2.0)},
    )
    (d,) = compare_aggregates(agg, "base", metrics=["bugs_filed"])["louder"]
    assert d.delta == pytest.approx(10.0)
    assert d.pct == pytest.approx(1.0)
    assert not d.ci_overlap
    assert d.significant


def test_overlapping_intervals_are_not_significant():
    agg = aggregated(
        base={"bugs_filed": summary(10.0, ci95=5.0)},
        other={"bugs_filed": summary(12.0, ci95=5.0)},
    )
    (d,) = compare_aggregates(agg, "base", metrics=["bugs_filed"])["other"]
    assert d.ci_overlap and not d.significant


def test_touching_intervals_overlap():
    # [8, 12] and [12, 16] share exactly one point: conservatively overlap
    agg = aggregated(
        base={"m": summary(10.0, ci95=2.0)},
        other={"m": summary(14.0, ci95=2.0)},
    )
    (d,) = compare_aggregates(agg, "base", metrics=["m"])["other"]
    assert d.ci_overlap


def test_empty_sample_side_yields_nan_delta():
    agg = aggregated(
        base={"m": summary(float("nan"), n=0)},
        other={"m": summary(5.0)},
    )
    (d,) = compare_aggregates(agg, "base", metrics=["m"])["other"]
    assert math.isnan(d.delta) and d.ci_overlap and not d.significant


def test_zero_baseline_mean_has_nan_pct():
    agg = aggregated(
        base={"m": summary(0.0, ci95=0.1)},
        other={"m": summary(5.0, ci95=0.1)},
    )
    (d,) = compare_aggregates(agg, "base", metrics=["m"])["other"]
    assert math.isnan(d.pct) and d.significant


def test_single_seed_sides_are_never_significant():
    # n=1 gives ci95=0 — a point, not an interval; any nonzero delta would
    # look "disjoint", but seed noise cannot be resolved from one draw
    agg = aggregated(
        base={"m": summary(10.0, ci95=0.0, n=1)},
        other={"m": summary(15.0, ci95=0.0, n=1)},
    )
    (d,) = compare_aggregates(agg, "base", metrics=["m"])["other"]
    assert not d.ci_overlap  # the points do differ...
    assert not d.significant  # ...but one seed resolves nothing


def test_missing_baseline_raises():
    with pytest.raises(KeyError, match="nope"):
        compare_aggregates(aggregated(a={"m": summary(1.0)}), "nope")


def test_baseline_excluded_from_output():
    agg = aggregated(a={"m": summary(1.0)}, b={"m": summary(2.0)})
    deltas = compare_aggregates(agg, "a", metrics=["m"])
    assert set(deltas) == {"b"}


def test_format_comparison_marks_significance():
    agg = aggregated(
        base={"m": summary(10.0, ci95=1.0), "k": summary(5.0, ci95=5.0)},
        other={"m": summary(20.0, ci95=1.0), "k": summary(6.0, ci95=5.0)},
    )
    deltas = compare_aggregates(agg, "base", metrics=["m", "k"])
    text = format_comparison(deltas, baseline="base")
    assert "* m" in text
    assert "~ k" in text
    only = format_comparison(deltas, baseline="base", only_significant=True)
    assert "* m" in only and "~ k" not in only


def test_compare_runs_end_to_end():
    from repro import run_campaigns, scenarios
    from repro.oar import WorkloadConfig

    base = scenarios.ScenarioSpec(
        name="cmp-base", months=0.1, clusters=("grisou",),
        families=("refapi",), backlog_faults=2,
        workload=WorkloadConfig(target_utilization=0.25))
    stormy = base.derive(name="cmp-stormy", backlog_faults=30)
    runs = run_campaigns([base, stormy], seeds=[0, 1], workers=1)
    deltas = compare_runs(runs, baseline="cmp-base")
    by_metric = {d.metric: d for d in deltas["cmp-stormy"]}
    # 15x the fault backlog must show up as more injected faults
    assert by_metric["faults_injected"].delta > 0
    assert set(deltas) == {"cmp-stormy"}


# -- policy scoreboard ---------------------------------------------------------


def test_scoreboard_ranks_ascending_with_leader_first():
    from repro.analysis import scoreboard

    agg = aggregated(
        slow={"turnaround_mean_s": summary(300.0, ci95=5.0)},
        fast={"turnaround_mean_s": summary(100.0, ci95=5.0)},
        mid={"turnaround_mean_s": summary(200.0, ci95=5.0)},
    )
    rows = scoreboard(agg, metric="turnaround_mean_s", extras=())
    assert [r.name for r in rows] == ["fast", "mid", "slow"]
    assert [r.rank for r in rows] == [1, 2, 3]
    assert rows[0].delta_vs_leader == 0.0
    assert rows[1].delta_vs_leader == pytest.approx(100.0)
    assert rows[1].significant_vs_leader  # disjoint CIs, n=3 both sides
    assert rows[2].significant_vs_leader


def test_scoreboard_descending_and_overlap():
    from repro.analysis import scoreboard

    agg = aggregated(
        a={"node_utilization": summary(0.60, ci95=0.05)},
        b={"node_utilization": summary(0.62, ci95=0.05)},
    )
    rows = scoreboard(agg, metric="node_utilization", ascending=False,
                      extras=())
    assert [r.name for r in rows] == ["b", "a"]
    assert not rows[1].significant_vs_leader  # CIs overlap


def test_scoreboard_no_sample_sorts_last():
    from repro.analysis import scoreboard

    agg = aggregated(
        broken={"m": summary(float("nan"), n=0)},
        works={"m": summary(10.0)},
    )
    rows = scoreboard(agg, metric="m", extras=())
    assert [r.name for r in rows] == ["works", "broken"]
    assert not rows[1].significant_vs_leader


def test_scoreboard_unknown_metric_raises():
    from repro.analysis import scoreboard

    with pytest.raises(KeyError, match="no-such"):
        scoreboard(aggregated(a={"m": summary(1.0)}), metric="no-such")


def test_format_scoreboard_marks_leader_and_significance():
    from repro.analysis import format_scoreboard, scoreboard

    agg = aggregated(
        slow={"m": summary(300.0, ci95=5.0),
              "jobs_completed": summary(50.0)},
        fast={"m": summary(100.0, ci95=5.0),
              "jobs_completed": summary(70.0)},
    )
    text = format_scoreboard(
        scoreboard(agg, metric="m", extras=("jobs_completed",)),
        metric="m")
    lines = text.splitlines()
    assert "m" in lines[0]
    assert "►" in lines[1] and "fast" in lines[1]
    assert "*" in lines[2] and "slow" in lines[2]
    assert "jobs_completed=70" in lines[1]
    assert format_scoreboard([], metric="m") == "(empty scoreboard)"
