"""Result analysis: build history, status page, reliability trends,
scenario-vs-baseline comparison."""

from .compare import (
    MetricDelta,
    ScoreboardRow,
    compare_aggregates,
    compare_runs,
    format_comparison,
    format_scoreboard,
    scoreboard,
)
from .history import BuildHistory, BuildRecord
from .statuspage import CellStatus, StatusPage

__all__ = [
    "BuildHistory",
    "BuildRecord",
    "StatusPage",
    "CellStatus",
    "MetricDelta",
    "ScoreboardRow",
    "compare_aggregates",
    "compare_runs",
    "format_comparison",
    "format_scoreboard",
    "scoreboard",
]
