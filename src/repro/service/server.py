"""The simulator service: one TCP socket, one session per connection.

Each accepted connection gets its own thread and :class:`Session`; the
sessions share a single :class:`CampaignService` (and thus one dedupe
store) and a single :class:`~repro.service.resume.RunRegistry`, so a
client that lost its connection mid-``RUN`` can reconnect — landing in a
*different* session — and ``RESM`` its run.  ``RUN`` campaigns are fully
connection-local — each builds its own simulated world — so concurrent
clients never contend on simulator state, only on the store's lock.

Peer-death handling: ``session_timeout_s`` is the recv deadline (a peer
silent that long frees its session thread), and ``heartbeat_interval_s``
paces ``PING`` probes while a session waits — a broken connection fails
the probe's *send* immediately instead of wedging until the deadline.

``port=0`` binds an ephemeral port (tests); :attr:`address` reports the
bound endpoint either way.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Optional

from .campaign import CampaignService
from .resume import RunRegistry
from .session import Session, SocketTransport

__all__ = ["SimulatorService"]


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        transport = SocketTransport(
            self.request,
            recv_deadline_s=self.server.session_timeout_s,
            heartbeat_interval_s=self.server.heartbeat_interval_s)
        session = Session(transport, campaigns=self.server.campaigns,
                          server_name=self.server.server_name,
                          runs=self.server.runs)
        transport.on_idle = session.heartbeat
        session.serve()


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class SimulatorService:
    """Lifecycle wrapper: bind, serve (blocking or background), stop."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store=None, name: str = "repro-sim",
                 session_timeout_s: float = 300.0,
                 heartbeat_interval_s: float = 30.0):
        self._server = _ThreadingServer((host, port), _Handler)
        self._server.campaigns = CampaignService(store)
        self._server.server_name = name
        self._server.session_timeout_s = session_timeout_s
        self._server.heartbeat_interval_s = heartbeat_interval_s
        self._server.runs = RunRegistry()
        self._thread: Optional[threading.Thread] = None

    @property
    def campaigns(self) -> CampaignService:
        return self._server.campaigns

    @property
    def runs(self) -> RunRegistry:
        """The shared run registry (RESM tokens live here)."""
        return self._server.runs

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real one."""
        return self._server.server_address[:2]

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`."""
        self._server.serve_forever(poll_interval=0.2)

    def start(self) -> "SimulatorService":
        """Serve on a daemon thread; returns self (for chaining in tests)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-sim-service", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SimulatorService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def wait_until_ready(host: str, port: int, timeout_s: float = 10.0) -> bool:
    """Poll until the service accepts connections (CI readiness gate)."""
    import time
    # Real time, deliberately: this polls the host TCP stack before any
    # simulation exists, so the determinism contract does not apply.
    deadline = time.monotonic() + timeout_s  # detlint: disable=DET002
    while time.monotonic() < deadline:  # detlint: disable=DET002
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return True
        except OSError:
            time.sleep(0.05)
    return False
