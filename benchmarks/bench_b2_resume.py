"""B2 — resumable campaign store: a warm resume pays only the missing cells.

Simulates an interrupted sweep: half the seed x scenario matrix is archived
into a :class:`CampaignStore`, then the full matrix is re-run with
``resume=True``.  The resume must execute only the missing half (counted
via the ``on_cell`` progress callback) and finish in well under the cold
wall-clock.  Cold-vs-warm timings land in ``benchmarks/results/``.
"""

import json
import os
import time

from repro import run_campaigns, scenarios
from repro.core.store import CampaignStore

from conftest import paper_row, print_table

_SEEDS = (0, 1, 2, 3)
_RESULTS = os.path.join(os.path.dirname(__file__), "results",
                        "BENCH_b2_resume.json")


def _matrix():
    smoke = scenarios.get("tiny-smoke").derive(months=0.15)
    stormy = scenarios.get("flaky-services").derive(
        name="flaky-small", clusters=smoke.clusters, months=0.15,
        backlog_faults=10, workload=smoke.workload)
    return [smoke, stormy]


def bench_b2_resume(benchmark, tmp_path):
    matrix = _matrix()
    store_path = os.path.join(tmp_path, "store.jsonl")

    # Cold half-run: archive cells for the first half of the seeds only —
    # the state an interrupted sweep leaves behind.
    t0 = time.perf_counter()
    half = run_campaigns(matrix, seeds=_SEEDS[:2], workers=1,
                         store=store_path)
    t_half = time.perf_counter() - t0
    assert all(r.ok for r in half)

    # Warm resume over the FULL matrix: only the missing half may execute.
    executed, cached = [], []

    def progress(run, from_store):
        (cached if from_store else executed).append((run.scenario, run.seed))

    t0 = time.perf_counter()
    full = benchmark.pedantic(
        lambda: run_campaigns(matrix, seeds=_SEEDS, workers=1,
                              store=store_path, resume=True,
                              on_cell=progress),
        rounds=1, iterations=1)
    t_resume = time.perf_counter() - t0

    # Cold full run for the reference wall-clock.
    t0 = time.perf_counter()
    cold = run_campaigns(matrix, seeds=_SEEDS, workers=1)
    t_cold = time.perf_counter() - t0

    rows = [
        paper_row("matrix cells (2 scenarios x 4 seeds)", 8, len(full)),
        paper_row("cells executed on resume", 4, len(executed)),
        paper_row("cells served from store", 4, len(cached)),
        paper_row("cold full matrix (s)", "-", f"{t_cold:.1f}"),
        paper_row("warm resume (s)", "-", f"{t_resume:.1f}"),
        paper_row("interrupted half-run (s)", "-", f"{t_half:.1f}"),
    ]
    print_table("B2: resumable campaign store (cold vs warm)", rows)

    os.makedirs(os.path.dirname(_RESULTS), exist_ok=True)
    with open(_RESULTS, "w", encoding="utf-8") as fh:
        json.dump({
            "id": "b2_resume",
            "metrics": {
                "cells_total": len(full),
                "cells_executed_on_resume": len(executed),
                "cells_cached_on_resume": len(cached),
                "cold_full_s": round(t_cold, 3),
                "warm_resume_s": round(t_resume, 3),
                "interrupted_half_s": round(t_half, 3),
            },
            "outcome": "passed",
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")

    assert len(full) == 8 and all(r.ok for r in full)
    # Resume executed exactly the missing cells, nothing else.
    assert sorted(executed) == sorted(
        (spec.name, seed) for spec in matrix for seed in _SEEDS[2:])
    assert len(cached) == 4
    # The archived half matches a cold run bit-for-bit.
    by_cell = {(r.scenario, r.seed): r for r in full}
    for r in cold:
        assert by_cell[(r.scenario, r.seed)].report.to_dict() == r.report.to_dict()
    # Warm resume costs ~the missing half, not the full matrix.
    assert t_resume < t_cold
    assert len(CampaignStore(store_path)) == 8
