"""Closed-loop campaign: months of simulated testbed operation.

This produces the paper's headline numbers:

* slide 22 — "118 bugs filed (inc. 84 already fixed)";
* slide 23 — "testbed reliability improving (85 % of tests successful in
  February ⇒ 93 % today, despite the addition of new tests)".

The loop: faults arrive (plus a pre-existing *backlog* — February started
with an unhealthy testbed), tests detect them, bugs get filed, operators
fix them, success rates climb.  The A2 ablation disables the framework and
watches faults accumulate instead.

:func:`run_scenario` is the canonical entry point: it takes a declarative
:class:`~repro.scenarios.ScenarioSpec` (e.g. a named preset).
:func:`run_campaign` + :class:`CampaignConfig` survive as a back-compat
shim over it; :func:`repro.core.batch.run_campaigns` fans a seed×scenario
matrix over worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..checksuite.base import CheckFamily
from ..oar.workload import WorkloadConfig
from ..scenarios.spec import ScenarioSpec
from ..scheduling.policies import SchedulerPolicy
from ..testbed.generator import ClusterSpec
from ..util.serialization import decode_dataclass, encode_dataclass
from ..util.simclock import DAY, MONTH, WEEK
from .builder import FrameworkBuilder
from .framework import TestingFramework

__all__ = ["CampaignConfig", "CampaignReport", "run_campaign", "run_scenario"]


@dataclass(frozen=True)
class CampaignConfig:
    """Legacy kwargs bundle; prefer :class:`~repro.scenarios.ScenarioSpec`."""

    seed: int = 0
    months: float = 5.0
    specs: Optional[Sequence[ClusterSpec]] = None
    #: Latent faults present before testing starts (February's backlog —
    #: the testbed was visibly unhealthy when systematic testing began).
    backlog_faults: int = 50
    #: ~0.45 faults/day + the backlog lands the five-month bug count in the
    #: slide-22 band (118 filed) while letting fixes outpace arrivals — the
    #: regime behind the paper's improving reliability.
    fault_mean_interarrival_s: float = 2.2 * DAY
    policy: SchedulerPolicy = field(default_factory=SchedulerPolicy)
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(target_utilization=0.6))
    operator_speedup: float = 1.0
    #: A2 ablation: with the framework off, nothing detects or fixes faults.
    framework_enabled: bool = True
    pernode: bool = False
    executors: int = 16

    def to_scenario(self, name: str = "") -> ScenarioSpec:
        """The declarative equivalent (minus any explicit ``specs`` list,
        which is not name-addressable and must ride as a builder override)."""
        return ScenarioSpec(
            name=name,
            seed=self.seed,
            months=self.months,
            backlog_faults=self.backlog_faults,
            fault_mean_interarrival_s=self.fault_mean_interarrival_s,
            policy=self.policy,
            workload=self.workload,
            operator_speedup=self.operator_speedup,
            framework_enabled=self.framework_enabled,
            pernode=self.pernode,
            executors=self.executors,
        )


@dataclass
class CampaignReport:
    months: float
    # slide-22 numbers
    bugs_filed: int
    bugs_fixed: int
    bugs_open: int
    bugs_unexplained: int
    faults_injected: int
    faults_detected: int
    faults_active_end: int
    detection_latency_days_median: float
    fix_time_days_median: float
    # slide-23 trend
    weekly_success_rates: list[tuple[float, float]]
    first_month_success: float
    last_month_success: float
    # load/scheduler behaviour
    total_builds: int
    unstable_builds: int
    weekly_active_faults: list[tuple[float, int]] = field(default_factory=list)
    bugs_by_family: dict[str, int] = field(default_factory=dict)
    # provenance: the spec name and seed the report came from (the name is
    # empty for legacy run_campaign callers, keeping summary() unchanged)
    scenario: str = ""
    seed: int = 0
    # elastic scheduling scoreboard: which strategy drove the run and how
    # the user workload fared under it (NaN means no finished user jobs)
    strategy: str = "default"
    jobs_completed: int = 0
    turnaround_mean_s: float = float("nan")
    wait_mean_s: float = float("nan")
    node_utilization: float = 0.0
    grow_events: int = 0
    shrink_events: int = 0

    def summary(self) -> str:
        head = f"campaign over {self.months:.1f} months"
        if self.scenario:
            head += f" [{self.scenario} @ seed {self.seed}]"
        lines = [
            head + ":",
            f"  bugs filed: {self.bugs_filed} (fixed: {self.bugs_fixed}, "
            f"open: {self.bugs_open}, unexplained: {self.bugs_unexplained})",
            f"  ground truth: {self.faults_injected} faults injected, "
            f"{self.faults_detected} detected, {self.faults_active_end} still active",
            "  detection latency (median): "
            f"{self.detection_latency_days_median:.1f} days",
            f"  success rate: {self.first_month_success:.0%} (first month) "
            f"-> {self.last_month_success:.0%} (last month)",
            f"  builds: {self.total_builds} total, "
            f"{self.unstable_builds} unstable (no resources)",
        ]
        return "\n".join(lines)

    # -- JSON codec (the campaign store archives reports as documents) --------

    def to_dict(self) -> dict:
        return encode_dataclass(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignReport":
        return decode_dataclass(cls, data)


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    months: Optional[float] = None,
    cluster_specs: Optional[Sequence[ClusterSpec]] = None,
    families: Optional[Sequence[CheckFamily]] = None,
    on_built: Optional[Callable[[TestingFramework], None]] = None,
    on_builder: Optional[Callable[[FrameworkBuilder], None]] = None,
) -> tuple[TestingFramework, CampaignReport]:
    """Run one campaign described by ``spec``; returns the world + report.

    ``seed``/``months`` override the spec's values (the batch runner uses
    this to fan one preset across a seed matrix); ``cluster_specs`` and
    ``families`` are the non-declarative escape hatches forwarded to the
    :class:`FrameworkBuilder`.  ``on_built`` fires with the wired world
    right before it starts — the hook instrumentation (e.g. the workload
    trace recorder) uses to observe a run from t=0.  ``on_builder`` fires
    earlier, with the configured builder before assembly — for callers
    that must swap subsystem factories or seed builder extras (e.g. the
    service layer's external-protocol scheduling strategy) without
    rewriting this function's control flow.
    """
    overrides = {}
    if seed is not None:
        overrides["seed"] = seed
    if months is not None:
        overrides["months"] = months
    if overrides:
        spec = spec.derive(**overrides)
    builder = FrameworkBuilder(spec)
    if cluster_specs is not None:
        builder.with_cluster_specs(cluster_specs)
    if families is not None:
        builder.with_families(families)
    if on_builder is not None:
        on_builder(builder)
    fw = builder.build()
    if on_built is not None:
        on_built(fw)
    # February's backlog: the testbed is already unhealthy when testing starts.
    for _ in range(spec.backlog_faults):
        fw.injector.inject()
    fw.start(workload=True, faults=True, testing=spec.framework_enabled)

    horizon = spec.months * MONTH
    weekly_active: list[tuple[float, int]] = []
    t = 0.0
    while t < horizon:
        t = min(t + WEEK, horizon)
        fw.run_until(t)
        weekly_active.append((t, len(fw.ground_truth.active())))

    report = _build_report(fw, spec.months, weekly_active,
                           scenario=spec.name, seed=spec.seed,
                           strategy=spec.strategy)
    return fw, report


def run_campaign(config: Optional[CampaignConfig] = None
                 ) -> tuple[TestingFramework, CampaignReport]:
    """Back-compat shim: run one campaign from a :class:`CampaignConfig`."""
    if config is None:
        config = CampaignConfig()
    return run_scenario(config.to_scenario(), cluster_specs=config.specs)


def _median_days(values: list[float]) -> float:
    if not values:
        return float("nan")
    return float(np.median(values)) / DAY


def _build_report(fw: TestingFramework, months: float,
                  weekly_active: list[tuple[float, int]],
                  scenario: str = "", seed: int = 0,
                  strategy: str = "default") -> CampaignReport:
    horizon = months * MONTH
    gt = fw.ground_truth
    tracker = fw.tracker
    history = fw.history
    weekly = history.weekly_success_series(until=horizon)
    first_month = history.success_rate(since=0.0, until=min(MONTH, horizon))
    last_month = history.success_rate(since=max(0.0, horizon - MONTH),
                                      until=horizon)
    bugs_by_family: dict[str, int] = {}
    for bug in tracker.bugs:
        bugs_by_family[bug.family] = bugs_by_family.get(bug.family, 0) + 1
    unstable = sum(1 for r in history.records if r.status == "UNSTABLE")
    # User-job scoreboard: every non-immediate job is workload (the
    # framework's own test jobs are immediate-or-cancel submissions).
    oar = fw.oar
    done = [j for j in oar.jobs.values()
            if not j.immediate and j.finished_at is not None
            and j.started_at is not None]
    turnaround = float(np.mean([j.finished_at - j.submitted_at
                                for j in done])) if done else float("nan")
    wait = float(np.mean([j.started_at - j.submitted_at
                          for j in done])) if done else float("nan")
    total_nodes = len(oar.db.node_uids())
    utilization = (oar.allocated_node_seconds(until=horizon)
                   / (total_nodes * horizon)) if total_nodes and horizon else 0.0
    return CampaignReport(
        months=months,
        bugs_filed=tracker.filed_count,
        bugs_fixed=tracker.fixed_count,
        bugs_open=tracker.open_count,
        bugs_unexplained=tracker.unexplained_count,
        faults_injected=len(gt.all),
        faults_detected=len(gt.detected()),
        faults_active_end=len(gt.active()),
        detection_latency_days_median=_median_days(gt.detection_latencies()),
        fix_time_days_median=_median_days(tracker.time_to_fix()),
        weekly_success_rates=weekly,
        first_month_success=first_month,
        last_month_success=last_month,
        total_builds=len(history.records),
        unstable_builds=unstable,
        weekly_active_faults=weekly_active,
        bugs_by_family=bugs_by_family,
        scenario=scenario,
        seed=seed,
        # The declarative strategy name, not the live object's: a builder
        # extra may swap in a transport adapter (the wire protocol's
        # external-protocol strategy) that reproduces the spec's policy
        # byte-for-byte — the report must then still match a local run.
        strategy=strategy,
        jobs_completed=len(done),
        turnaround_mean_s=turnaround,
        wait_mean_s=wait,
        node_utilization=utilization,
        grow_events=oar.grow_events,
        shrink_events=oar.shrink_events,
    )
