"""Determinism guard: seeded campaigns must be byte-for-byte reproducible.

The golden hashes below were recorded with the *pre-fast-path* event
kernel (PR 4 state) and re-verified unchanged after the kernel overhaul:
the timeout fast path, the lazy-cancelled heap entries, the instant-queue
split, the scheduler's batched ``earliest_start`` and the monitoring
series handles all preserve the exact (time, seq) execution order.

Re-pinned once for the elastic-scheduling PR: the report document gained
scoreboard fields (strategy, turnaround/wait means, utilization,
grow/shrink counters), which changes the hash of the *document*.  Every
pre-existing field was diffed against a pre-change capture and came back
byte-identical — rigid workloads behave exactly as before (these presets
all run the ``default`` strategy; ``grow_events == shrink_events == 0``).

If this test fails, a change altered simulation *behaviour*, not just
performance.  That can be a legitimate semantic change — in which case
regenerate the goldens (see the command in ``_regenerate``) and say so in
the PR — but it must never happen as a side effect of an optimization.
"""

import hashlib
import json

from repro import run_scenario, scenarios

#: (preset, seed, months) -> sha256 of the canonical report JSON.
GOLDEN_REPORT_HASHES = {
    ("tiny-smoke", 0, 0.35):
        "9bdda769fd2724d5735a3b42d3d3ef6ac74627fa7b5201f01c01435b3e13b426",
    ("tiny-smoke", 7, 0.35):
        "5171b73dc13519040f6fff3b3523b955a3e3694d543f3c661204f3a232b4ac23",
    ("trace-replay", 0, 0.12):
        "3b7fb0c6401f465217e2ee5e0a1228f52b1e5f6e37f12878365e9b83257e7581",
    ("bursty-replay", 0, 0.12):
        "860f0f8d257ea576cf44d51b9933df1903880fad2c3e2a7f60e976ce4c4026f6",
}


def report_hash(report) -> str:
    """Canonical content hash of a campaign report (sorted keys, no
    whitespace) — any behavioural drift anywhere in the stack lands in
    some report field and changes this."""
    doc = json.dumps(report.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def _regenerate():  # pragma: no cover - manual tool
    """python -c "import sys; sys.path[:0] = ['src', 'tests/core']; \
from test_determinism_guard import _regenerate; _regenerate()"
    """
    for (name, seed, months) in GOLDEN_REPORT_HASHES:
        _, rep = run_scenario(scenarios.get(name), seed=seed, months=months)
        print(f'    ("{name}", {seed}, {months}):\n'
              f'        "{report_hash(rep)}",')


def test_reports_match_pre_fast_path_goldens():
    for (name, seed, months), want in GOLDEN_REPORT_HASHES.items():
        _, report = run_scenario(scenarios.get(name), seed=seed, months=months)
        got = report_hash(report)
        assert got == want, (
            f"{name} @ seed {seed} ({months} months) drifted from the "
            f"golden report: {got} != {want} — simulation behaviour "
            "changed, not just speed")


def test_repeated_run_is_byte_identical():
    spec = scenarios.get("tiny-smoke")
    _, first = run_scenario(spec, seed=3, months=0.1)
    _, second = run_scenario(spec, seed=3, months=0.1)
    assert report_hash(first) == report_hash(second)
