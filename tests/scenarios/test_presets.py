"""Preset registry: lookup, completeness, and baseline fidelity."""

import pytest

from repro import scenarios
from repro.core import CampaignConfig
from repro.scenarios import ScenarioSpec

EXPECTED_PRESETS = {
    "paper-baseline",
    "a2-no-framework",
    "pernode",
    "flaky-services",
    "understaffed-ops",
    "double-scale",
    "tiny-smoke",
    "high-churn",
    "trace-replay",
    "bursty-replay",
}


def test_library_ships_expected_presets():
    assert EXPECTED_PRESETS <= set(scenarios.names())
    assert len(scenarios.names()) >= 10


def test_get_returns_spec():
    spec = scenarios.get("paper-baseline")
    assert isinstance(spec, ScenarioSpec)
    assert spec.name == "paper-baseline"


def test_get_unknown_name_lists_known():
    with pytest.raises(KeyError, match="paper-baseline"):
        scenarios.get("no-such-scenario")


def test_register_rejects_duplicates():
    spec = scenarios.get("tiny-smoke")
    with pytest.raises(ValueError, match="already registered"):
        scenarios.register(spec)


def test_paper_baseline_matches_legacy_campaign_defaults():
    """The preset must describe exactly run_campaign(CampaignConfig())."""
    spec = scenarios.get("paper-baseline")
    legacy = CampaignConfig()
    assert spec.seed == legacy.seed
    assert spec.months == legacy.months
    assert spec.clusters is None and spec.scale == 1.0
    assert spec.backlog_faults == legacy.backlog_faults
    assert spec.fault_mean_interarrival_s == legacy.fault_mean_interarrival_s
    assert spec.policy == legacy.policy
    assert spec.workload == legacy.workload
    assert spec.operator_speedup == legacy.operator_speedup
    assert spec.framework_enabled == legacy.framework_enabled
    assert spec.pernode == legacy.pernode
    assert spec.executors == legacy.executors


def test_ablation_presets_differ_only_where_advertised():
    base = scenarios.get("paper-baseline")
    assert scenarios.get("a2-no-framework") == base.derive(
        name="a2-no-framework",
        description=scenarios.get("a2-no-framework").description,
        framework_enabled=False)
    assert scenarios.get("pernode").pernode is True
    assert scenarios.get("double-scale").scale == 2.0
    assert scenarios.get("understaffed-ops").operator_speedup < 1.0
    assert (scenarios.get("flaky-services").fault_mean_interarrival_s
            < base.fault_mean_interarrival_s)


def test_tiny_smoke_resolves_small_world():
    spec = scenarios.get("tiny-smoke")
    specs = spec.resolve_cluster_specs()
    assert {s.name for s in specs} == set(spec.clusters)
    assert sum(s.nodes for s in specs) < 200


def test_double_scale_doubles_node_counts():
    base = scenarios.get("paper-baseline").resolve_cluster_specs()
    doubled = scenarios.get("double-scale").resolve_cluster_specs()
    assert sum(s.nodes for s in doubled) == 2 * sum(s.nodes for s in base)
