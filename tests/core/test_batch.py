"""Batch campaign runner: matrix shape, determinism, aggregation."""

import math

import pytest

from repro import scenarios
from repro.core import (
    CampaignRun,
    aggregate_runs,
    run_campaigns,
    run_scenario,
    summarize_runs,
)
from repro.core.batch import SCALAR_METRICS
from repro.oar import WorkloadConfig


def report_doc(report):
    """NaN-tolerant equality proxy (NaN != NaN under dataclass ==)."""
    import dataclasses

    from repro.util import canonical_json
    return canonical_json(dataclasses.asdict(report))


def fast_spec(name="batch-fast", **overrides):
    defaults = dict(
        name=name,
        months=0.15,
        clusters=("grisou", "nova", "taurus"),
        families=("refapi", "oarstate", "console"),
        backlog_faults=4,
        workload=WorkloadConfig(target_utilization=0.25),
    )
    defaults.update(overrides)
    return scenarios.ScenarioSpec(**defaults)


def test_matrix_shape_and_order():
    runs = run_campaigns([fast_spec("m-a"), fast_spec("m-b")],
                         seeds=[3, 5], workers=1)
    assert [(r.scenario, r.seed) for r in runs] == [
        ("m-a", 3), ("m-a", 5), ("m-b", 3), ("m-b", 5)]
    assert all(isinstance(r, CampaignRun) for r in runs)
    assert all(r.report.scenario == r.scenario and r.report.seed == r.seed
               for r in runs)


def test_accepts_preset_names():
    runs = run_campaigns(["tiny-smoke"], seeds=[1], workers=1, months=0.15)
    assert len(runs) == 1
    assert runs[0].scenario == "tiny-smoke"
    assert runs[0].report.months == 0.15


def test_same_seed_same_report():
    a = run_campaigns([fast_spec()], seeds=[7], workers=1)
    b = run_campaigns([fast_spec()], seeds=[7], workers=1)
    assert report_doc(a[0].report) == report_doc(b[0].report)


def test_workers_do_not_change_results():
    spec = fast_spec()
    serial = run_campaigns([spec], seeds=[0, 1], workers=1)
    parallel = run_campaigns([spec], seeds=[0, 1], workers=2)
    assert [report_doc(r.report) for r in serial] == \
        [report_doc(r.report) for r in parallel]


def test_batch_matches_run_scenario():
    spec = fast_spec()
    (run,) = run_campaigns([spec], seeds=[11], workers=1)
    _, direct = run_scenario(spec, seed=11)
    assert report_doc(run.report) == report_doc(direct)


def test_empty_matrix():
    assert run_campaigns([], seeds=[0]) == []
    assert run_campaigns([fast_spec()], seeds=[]) == []


def test_aggregate_mean_and_ci():
    runs = run_campaigns([fast_spec()], seeds=[0, 1, 2], workers=1)
    agg = aggregate_runs(runs)
    metrics = agg["batch-fast"]
    assert set(metrics) == set(SCALAR_METRICS)
    builds = metrics["total_builds"]
    values = [r.report.total_builds for r in runs]
    assert builds.n == 3
    assert builds.mean == pytest.approx(sum(values) / 3)
    assert builds.ci95 >= 0.0
    # mean must sit inside the observed range
    assert min(values) <= builds.mean <= max(values)


def test_aggregate_drops_nan_samples():
    # framework off -> nothing detected -> detection latency is NaN
    off = fast_spec("batch-off", framework_enabled=False)
    runs = run_campaigns([off], seeds=[0, 1], workers=1)
    lat = aggregate_runs(runs)["batch-off"]["detection_latency_days_median"]
    assert lat.n == 0 and math.isnan(lat.mean)
    bugs = aggregate_runs(runs)["batch-off"]["bugs_filed"]
    assert bugs.n == 2 and bugs.mean == 0.0


def test_summarize_runs_renders():
    runs = run_campaigns([fast_spec()], seeds=[0, 1], workers=1)
    text = summarize_runs(runs)
    assert "batch-fast" in text
    assert "bugs_filed" in text
    assert "n=2" in text


# -- streaming engine: error capture, callbacks, worker invariance ------------


def crashing_spec(name="batch-crash"):
    # executors=0 passes spec validation but blows up in the builder
    # (Resource capacity must be >= 1) — a deterministic in-worker crash.
    return fast_spec(name, executors=0)


def test_crashing_cell_does_not_abort_matrix():
    runs = run_campaigns([crashing_spec(), fast_spec()], seeds=[0, 1],
                         workers=1)
    assert [(r.scenario, r.seed) for r in runs] == [
        ("batch-crash", 0), ("batch-crash", 1),
        ("batch-fast", 0), ("batch-fast", 1)]
    crashed = [r for r in runs if r.scenario == "batch-crash"]
    healthy = [r for r in runs if r.scenario == "batch-fast"]
    assert all(not r.ok and r.report is None for r in crashed)
    assert all("capacity" in r.error for r in crashed)
    assert all(r.ok for r in healthy)


def test_crashing_cell_survives_worker_pool():
    runs = run_campaigns([crashing_spec(), fast_spec()], seeds=[0, 1],
                         workers=2)
    assert sum(1 for r in runs if r.ok) == 2
    assert sum(1 for r in runs if not r.ok) == 2
    # and the pool kept matrix order despite unordered completion
    assert [(r.scenario, r.seed) for r in runs] == [
        ("batch-crash", 0), ("batch-crash", 1),
        ("batch-fast", 0), ("batch-fast", 1)]


def test_on_cell_fires_once_per_cell():
    seen = []
    runs = run_campaigns([fast_spec()], seeds=[0, 1], workers=1,
                         on_cell=lambda r, cached: seen.append(
                             (r.scenario, r.seed, cached)))
    assert sorted(seen) == [("batch-fast", 0, False), ("batch-fast", 1, False)]
    assert len(runs) == 2


def test_worker_count_invariance_property():
    """workers=1 and workers=N produce byte-identical matrices, including
    captured failures, at every worker count."""
    specs = [fast_spec("inv-a"), crashing_spec("inv-x"),
             fast_spec("inv-b", backlog_faults=6)]
    seeds = [0, 1]
    serial = run_campaigns(specs, seeds=seeds, workers=1)
    for workers in (2, 3, 4):
        parallel = run_campaigns(specs, seeds=seeds, workers=workers)
        assert [(r.scenario, r.seed, r.ok, r.spec_hash) for r in serial] == \
            [(r.scenario, r.seed, r.ok, r.spec_hash) for r in parallel]
        assert [report_doc(r.report) for r in serial if r.ok] == \
            [report_doc(r.report) for r in parallel if r.ok]


def test_aggregate_skips_failed_runs():
    runs = run_campaigns([crashing_spec(), fast_spec()], seeds=[0, 1],
                         workers=1)
    agg = aggregate_runs(runs)
    assert "batch-crash" not in agg  # nothing but failures: no block
    assert agg["batch-fast"]["total_builds"].n == 2
    text = summarize_runs(runs)
    assert "failed cells (2)" in text
    assert "batch-crash @ seed 0" in text


def test_aggregate_rejects_conflicting_specs_under_one_name():
    # same name, different world: merging them into one CI would be bogus
    a = run_campaigns([fast_spec("dup")], seeds=[0], workers=1)
    b = run_campaigns([fast_spec("dup", backlog_faults=9)], seeds=[1],
                      workers=1)
    with pytest.raises(ValueError, match="dup"):
        aggregate_runs(a + b)


def test_aggregate_accepts_same_spec_under_one_name():
    # the same world listed twice (e.g. two resumed slices) is fine
    a = run_campaigns([fast_spec("same")], seeds=[0], workers=1)
    b = run_campaigns([fast_spec("same")], seeds=[1], workers=1)
    agg = aggregate_runs(a + b)
    assert agg["same"]["total_builds"].n == 2


def test_warm_pool_is_reused_across_batches():
    from repro.core import batch as batch_mod

    batch_mod.shutdown_worker_pool()
    smoke = scenarios.get("tiny-smoke").derive(months=0.03)
    first = run_campaigns([smoke], seeds=[0, 1], workers=2)
    pool_after_first = batch_mod._warm_pool
    second = run_campaigns([smoke], seeds=[2, 3], workers=2)
    pool_after_second = batch_mod._warm_pool
    try:
        assert pool_after_first is not None
        assert pool_after_first is pool_after_second
        assert all(r.ok for r in first + second)
    finally:
        batch_mod.shutdown_worker_pool()
    assert batch_mod._warm_pool is None


def test_warm_pool_and_chunking_do_not_change_results():
    from repro.core import batch as batch_mod

    smoke = scenarios.get("tiny-smoke").derive(months=0.03)
    seeds = [0, 1, 2, 3]
    serial = run_campaigns([smoke], seeds=seeds, workers=1)
    try:
        chunked = run_campaigns([smoke], seeds=seeds, workers=2, chunksize=2)
        one_shot = run_campaigns([smoke], seeds=seeds, workers=2,
                                 warm_pool=False, chunksize=3)
    finally:
        batch_mod.shutdown_worker_pool()
    for a, b in zip(serial, chunked):
        assert a.report.to_dict() == b.report.to_dict()
    for a, b in zip(serial, one_shot):
        assert a.report.to_dict() == b.report.to_dict()
