"""SER201 fixture: mutable-dataclass-default positives and negatives."""

from dataclasses import dataclass, field


@dataclass
class BadDefaults:
    names: list = []  # EXPECT(SER201)
    table: dict = {}  # EXPECT(SER201)
    tags: set = set()  # EXPECT(SER201)
    picked: list = field(default=[])  # EXPECT(SER201)


@dataclass(frozen=True)
class FrozenBad:
    # frozen= does not help: the default object is still shared
    rows: list = list()  # EXPECT(SER201)


@dataclass
class GoodDefaults:
    names: list = field(default_factory=list)  # negative
    table: dict = field(default_factory=dict)  # negative
    count: int = 0  # negative: immutable
    label: str = "x"  # negative
    pair: tuple = ()  # negative: immutable


class NotADataclass:
    # negative: class attributes of plain classes are out of scope
    shared: list = []
