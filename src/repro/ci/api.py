"""REST-shaped read-only API over the Jenkins server.

Slide 18: the external status page "uses Jenkins' REST API".  The methods
here return plain JSON-serializable dicts shaped like Jenkins'
``/api/json`` endpoints, so the analysis layer depends only on this
interface, never on server internals — exactly the coupling the real
system has.
"""

from __future__ import annotations

from typing import Any, Optional

from .job import Build
from .server import JenkinsServer

__all__ = ["JenkinsApi"]


def _build_doc(build: Build) -> dict[str, Any]:
    return {
        "number": build.number,
        "result": build.status.value if build.status else None,
        "building": build.running,
        "parameters": dict(build.parameters),
        "cause": build.cause,
        "queued_at": build.queued_at,
        "timestamp": build.started_at,
        "duration_s": build.duration_s,
    }


class JenkinsApi:
    """Read-only JSON views (the ``/api/json`` surface)."""

    def __init__(self, server: JenkinsServer):
        self._server = server

    def list_jobs(self) -> list[str]:
        return sorted(self._server.jobs)

    def job_info(self, job_name: str, depth_builds: int = 25) -> dict[str, Any]:
        job = self._server.job(job_name)
        last = job.last_build()
        return {
            "name": job.name,
            "description": job.description,
            "buildable": True,
            "builds": [_build_doc(b) for b in job.builds[-depth_builds:]],
            "lastCompletedBuild": _build_doc(last) if last else None,
        }

    def build_info(self, job_name: str, number: int) -> dict[str, Any]:
        job = self._server.job(job_name)
        for build in job.builds:
            if build.number == number:
                doc = _build_doc(build)
                doc["log"] = list(build.log)
                return doc
        from ..util.errors import CiError

        raise CiError(f"{job_name} has no build #{number}")

    def builds_matching(self, job_name: str,
                        parameters: Optional[dict[str, Any]] = None,
                        since: float = 0.0) -> list[dict[str, Any]]:
        """Finished builds filtered by parameter subset and queue time."""
        job = self._server.job(job_name)
        out = []
        for build in job.builds:
            if not build.finished or build.queued_at < since:
                continue
            if parameters and any(build.parameters.get(k) != v
                                  for k, v in parameters.items()):
                continue
            out.append(_build_doc(build))
        return out

    def queue_info(self) -> dict[str, Any]:
        return {
            "queue_length": self._server.queue_length(),
            "busy_executors": self._server.busy_executors(),
        }
