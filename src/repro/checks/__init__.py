"""g5k-checks: per-node verification of description vs acquired facts."""

from .g5kchecks import Mismatch, NodeCheckReport, expected_facts, run_g5k_checks

__all__ = ["Mismatch", "NodeCheckReport", "expected_facts", "run_g5k_checks"]
