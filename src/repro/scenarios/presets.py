"""Named scenario presets.

The paper's claim is that a testbed becomes trustworthy through *diverse*,
continuous testing — so the reproduction ships a library of ready-made
worlds: the paper's own regime, its ablations, stress variants and a smoke
test.  ``repro.scenarios.get(name)`` resolves a name to an immutable
:class:`~repro.scenarios.spec.ScenarioSpec`; ``derive()`` makes variants.

Downstream code (examples, benchmarks, the ``repro-campaign`` CLI) refers
to scenarios by these names instead of re-typing kwargs.
"""

from __future__ import annotations

from ..oar.traces import TraceReplayConfig
from ..oar.workload import WorkloadConfig
from ..scheduling.policies import SchedulerPolicy
from ..util.simclock import DAY, HOUR
from .spec import ScenarioSpec

__all__ = ["register", "get", "names", "all_presets"]

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a preset under ``spec.name``; returns the spec for chaining."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"preset {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    """Look a preset up by name (KeyError lists the known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario preset: {name!r}; "
            f"known presets: {', '.join(names())}") from None


def names() -> list[str]:
    return sorted(_REGISTRY)


def all_presets() -> list[ScenarioSpec]:
    return [_REGISTRY[n] for n in names()]


# -- the built-in library ------------------------------------------------------

#: The paper's headline campaign: full 894-node testbed, five months,
#: February's backlog, ~0.45 faults/day — slide 22/23 numbers.
register(ScenarioSpec(
    name="paper-baseline",
    description="The paper's five-month closed-loop campaign "
                "(slides 22-23: 118 bugs filed, reliability 85% -> 93%).",
))

#: A2 ablation: the pre-framework world of slide 10 — nothing detects or
#: fixes faults, they accumulate unboundedly.
register(get("paper-baseline").derive(
    name="a2-no-framework",
    description="Ablation: testing framework off; faults accumulate "
                "silently (slide 10).",
    framework_enabled=False,
))

#: Slide 23's open question: schedule hardware tests one node at a time.
register(get("paper-baseline").derive(
    name="pernode",
    description="Per-node scheduling of hardware-centric tests "
                "(slide 23's open question).",
    pernode=True,
))

#: Services break four times more often — tests the framework under a
#: service-fault storm rather than the paper's calm regime.
register(get("paper-baseline").derive(
    name="flaky-services",
    description="Fault storm: mean fault inter-arrival cut to ~0.5 days.",
    fault_mean_interarrival_s=0.55 * DAY,
    backlog_faults=30,
))

#: Operators at a third of their speed: bugs get filed faster than fixed.
register(get("paper-baseline").derive(
    name="understaffed-ops",
    description="Operator team at 35% speed; the bug queue grows.",
    operator_speedup=0.35,
))

#: The testbed doubles in size with the same testing capacity.
register(get("paper-baseline").derive(
    name="double-scale",
    description="Every cluster at twice the node count; same Jenkins "
                "executors and scheduler cadence.",
    scale=2.0,
))

#: Five clusters, a week and a half, light load: finishes in seconds.
register(ScenarioSpec(
    name="tiny-smoke",
    description="Small fast world for CI smoke runs and quickstarts.",
    months=0.35,
    clusters=("grisou", "grimoire", "graoully", "nova", "taurus"),
    backlog_faults=8,
    fault_mean_interarrival_s=1.0 * DAY,
    workload=WorkloadConfig(target_utilization=0.3),
))

#: Trace-driven contention: instead of a fresh Poisson draw, replay the
#: bundled ``tiny-g5k`` trace (a recorded tiny-smoke run) at its recorded
#: timestamps — the same user workload every run, any seed.
register(get("tiny-smoke").derive(
    name="trace-replay",
    description="Replay the bundled tiny-g5k workload trace at its "
                "recorded timestamps (reproducible contention).",
    workload=TraceReplayConfig(path="tiny-g5k"),
))

#: The same trace squeezed into half the time and doubled in volume: a
#: burst regime no Poisson calibration produces.
register(get("trace-replay").derive(
    name="bursty-replay",
    description="tiny-g5k trace at 2x arrival rate and 2x job volume: "
                "bursty overload the Poisson generator cannot express.",
    workload=TraceReplayConfig(path="tiny-g5k", time_scale=0.5,
                               load_scale=2.0),
))

#: Malleable A/B arena: the bursty replay with every job's width widened
#: into an elastic range (half to double its recorded size), driven by a
#: malleable policy.  Swap ``strategy`` to A/B the policy family —
#: ``repro-campaign scoreboard`` does exactly that.
register(get("bursty-replay").derive(
    name="elastic-burst",
    description="Bursty tiny-g5k replay with elastic width ranges "
                "(0.5x..2x) under a malleable scheduling policy.",
    workload=TraceReplayConfig(path="tiny-g5k", time_scale=0.5,
                               load_scale=2.0, elastic_min_scale=0.5,
                               elastic_max_scale=2.0),
    strategy="common-pool",
))

#: Heavily-used testbed with aggressive re-test cadence: maximum
#: contention between users and the framework (the slide-16 regime).
register(get("paper-baseline").derive(
    name="high-churn",
    description="85%-utilized testbed, 1-day software re-test cadence: "
                "scheduler and users fight for nodes.",
    workload=WorkloadConfig(target_utilization=0.85,
                            mean_walltime_s=1.5 * HOUR),
    policy=SchedulerPolicy(software_period_s=1 * DAY,
                           hardware_period_s=3 * DAY),
    fault_mean_interarrival_s=1.2 * DAY,
))
