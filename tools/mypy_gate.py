#!/usr/bin/env python
"""Gate mypy output against the committed baseline.

CI installs mypy and runs ``python tools/mypy_gate.py``; the gate fails
when mypy reports an error that is not in ``tools/mypy-baseline.txt`` and
warns (without failing) when a baselined error has disappeared, so the
baseline can only shrink through a reviewed commit.

Errors are normalized to ``<path> [<code>] <message>`` — no line or
column numbers — so the baseline survives unrelated edits that shift
lines but goes stale when the underlying complaint changes.

When mypy is not installed (the offline dev container does not ship it),
the gate prints a notice and exits 0: the check is CI-enforced, not a
local prerequisite.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "tools" / "mypy-baseline.txt"

# mypy output: "src/repro/util/events.py:123: error: message  [code]"
_ERROR_RE = re.compile(
    r"^(?P<path>[^:]+):\d+(?::\d+)?: error: (?P<message>.*?)"
    r"(?:\s+\[(?P<code>[a-z0-9-]+)\])?$")


def normalize(line: str) -> str | None:
    m = _ERROR_RE.match(line.strip())
    if not m:
        return None
    code = m.group("code") or "misc"
    return f"{m.group('path')} [{code}] {m.group('message')}"


def load_baseline() -> list[str]:
    if not BASELINE.exists():
        return []
    return [ln.strip() for ln in BASELINE.read_text().splitlines()
            if ln.strip() and not ln.lstrip().startswith("#")]


def run_mypy() -> tuple[list[str], str]:
    """Run mypy over the package; return (normalized errors, raw output)."""
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file",
         str(REPO_ROOT / "setup.cfg"), "-p", "repro"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    raw = proc.stdout + proc.stderr
    errors = []
    for line in proc.stdout.splitlines():
        norm = normalize(line)
        if norm is not None:
            errors.append(norm)
    return sorted(errors), raw


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mypy_gate",
        description="diff mypy output against tools/mypy-baseline.txt")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current output")
    args = parser.parse_args(argv)

    try:
        import mypy  # noqa: F401
    except ImportError:
        if shutil.which("mypy") is None:
            print("mypy_gate: mypy not installed; skipping (CI enforces "
                  "this gate)")
            return 0

    errors, raw = run_mypy()
    baseline = load_baseline()

    if args.update_baseline:
        header = [ln for ln in BASELINE.read_text().splitlines()
                  if ln.lstrip().startswith("#")] if BASELINE.exists() else []
        BASELINE.write_text("\n".join(header + errors) + "\n")
        print(f"mypy_gate: baseline rewritten with {len(errors)} entries")
        return 0

    # Multiset diff: each baseline entry forgives one occurrence.
    budget: dict[str, int] = {}
    for entry in baseline:
        budget[entry] = budget.get(entry, 0) + 1
    new = []
    for err in errors:
        if budget.get(err, 0) > 0:
            budget[err] -= 1
        else:
            new.append(err)
    stale = [entry for entry, left in budget.items() if left > 0]

    if stale:
        print(f"mypy_gate: {len(stale)} baseline entr"
              f"{'y is' if len(stale) == 1 else 'ies are'} stale "
              "(fixed since baselining) — prune with --update-baseline:")
        for entry in stale:
            print(f"  - {entry}")
    if new:
        print(f"mypy_gate: {len(new)} new error(s) not in the baseline:")
        for err in new:
            print(f"  + {err}")
        print("\nraw mypy output:\n" + raw)
        return 1
    print(f"mypy_gate: clean ({len(errors)} error(s), all baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
